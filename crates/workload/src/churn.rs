//! Sustained registration-churn workloads for the control-plane
//! experiments (DESIGN.md §12).
//!
//! Real subscription populations are heavy-tailed in *predicates*, not
//! just terms: millions of subscribers share a far smaller pool of
//! distinct keyword queries (the MSN trace's 4 M queries collapse onto
//! repeated popular queries). [`ChurnWorkload`] models that regime
//! directly — a fixed pool of distinct predicates drawn from the
//! MSN-calibrated filter law, a Zipf popularity law *over the pool*, and
//! a subscriber population assigned predicates by that law. Aggregation's
//! payoff (shared posting entries, compressed fan-out sets) and the
//! canonical-hit fast path both depend on this subscriber-to-predicate
//! collapse, so the pool law is the knob the control-plane benchmark
//! sweeps.
//!
//! Churn is generated in *ticks*: each tick turns over a fixed fraction of
//! the population (the paper-scale target is 1 %/sec at 1 M subscribers).
//! Every churn event unregisters one live subscriber; half the events also
//! bring a fresh subscriber in under a newly drawn predicate
//! (leave-then-join, exercising the register path end to end), the other
//! half re-register the *same* subscriber under a different predicate
//! (the displacement path, where one control operation must atomically
//! unsubscribe and resubscribe).

use crate::{FilterGenerator, MsnSpec};
use move_stats::Zipf;
use move_types::{Filter, FilterId, MoveError, Result, TermId};
use rand::Rng;
use std::collections::BTreeMap;

/// Parameters of a registration-churn workload.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Live subscriber population size (1,000,000 at paper scale).
    pub subscribers: u64,
    /// Distinct predicates in the shared pool. The aggregation ratio is
    /// roughly `subscribers / predicate_pool` before popularity skew.
    pub predicate_pool: usize,
    /// Zipf exponent of predicate popularity over the pool (1.0 gives the
    /// classic heavy head; 0.0 spreads subscribers uniformly).
    pub pool_exponent: f64,
    /// Fraction of the population churned per [`ChurnWorkload::tick`]
    /// (0.01 = the paper-scale 1 %/sec target at one tick per second).
    pub churn_fraction: f64,
    /// Shape of the individual predicates (term count and term popularity
    /// laws; see [`FilterGenerator`]).
    pub filter_spec: MsnSpec,
}

impl ChurnSpec {
    /// The control-plane benchmark's defaults at full scale: 1 M
    /// subscribers over 50 k distinct predicates (20× aliasing before
    /// skew), Zipf(1.0) pool popularity, 1 % churn per tick.
    pub fn paper() -> Self {
        Self {
            subscribers: 1_000_000,
            predicate_pool: 50_000,
            pool_exponent: 1.0,
            churn_fraction: 0.01,
            filter_spec: MsnSpec::paper(),
        }
    }

    /// The paper shape scaled down: `subscribers` population, pool scaled
    /// to keep the 20× aliasing ratio (floor 8), vocabulary scaled with
    /// the population.
    pub fn scaled(subscribers: u64) -> Self {
        let paper = Self::paper();
        let pool = ((subscribers / 20).max(8) as usize).min(paper.predicate_pool);
        let vocab = ((subscribers as usize) * 4).clamp(512, paper.filter_spec.vocabulary);
        Self {
            subscribers,
            predicate_pool: pool,
            filter_spec: MsnSpec::scaled(vocab),
            ..paper
        }
    }
}

/// One control-plane operation emitted by a churn tick, in the order it
/// must be applied.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Register this filter (a fresh subscriber, or a live subscriber
    /// switching predicates — the latter displaces its old subscription
    /// inside the scheme).
    Register(Filter),
    /// Unregister this subscriber.
    Unregister(FilterId),
}

/// A churning subscriber population over a Zipf-popular predicate pool.
///
/// # Examples
///
/// ```
/// use move_workload::{ChurnSpec, ChurnWorkload};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut churn = ChurnWorkload::new(&ChurnSpec::scaled(500), &mut rng).unwrap();
/// let initial = churn.initial_filters();
/// assert_eq!(initial.len(), 500);
/// let ops = churn.tick(&mut rng);
/// assert!(!ops.is_empty());
/// assert_eq!(churn.live().count(), 500); // turnover preserves the population
/// ```
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    /// The distinct predicate pool (sorted term sets, deduplicated).
    pool: Vec<Vec<TermId>>,
    /// Popularity law over `pool` indices.
    law: Zipf,
    /// Live population: subscriber id → pool index.
    live: BTreeMap<u64, usize>,
    /// The live ids again, unordered, for O(1) uniform victim picks at
    /// million-subscriber scale (a `BTreeMap` rank query is O(n)).
    ids: Vec<u64>,
    /// Next fresh subscriber id (ids are never reused, so a delivery
    /// stream can attribute every filter id to one subscription epoch).
    next_id: u64,
    /// Churn events per tick.
    events_per_tick: usize,
}

impl ChurnWorkload {
    /// Builds the predicate pool and the initial (unregistered) population
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Calibration`] when the filter spec cannot be
    /// calibrated, or [`MoveError::InvalidConfig`] when the spec's
    /// vocabulary cannot yield `predicate_pool` distinct predicates.
    pub fn new<R: Rng + ?Sized>(spec: &ChurnSpec, rng: &mut R) -> Result<Self> {
        let gen = FilterGenerator::new(&spec.filter_spec)?;
        // Draw until the pool holds the requested number of *distinct*
        // term sets. Popular short predicates collide often, so allow a
        // generous attempt budget before declaring the spec infeasible.
        let mut seen: BTreeMap<Vec<TermId>, ()> = BTreeMap::new();
        let mut pool = Vec::with_capacity(spec.predicate_pool);
        let budget = spec.predicate_pool.saturating_mul(64).max(1024);
        for _ in 0..budget {
            if pool.len() == spec.predicate_pool {
                break;
            }
            let f = gen.generate(0u64, rng);
            let terms = f.terms().to_vec();
            if seen.insert(terms.clone(), ()).is_none() {
                pool.push(terms);
            }
        }
        if pool.len() < spec.predicate_pool {
            return Err(MoveError::InvalidConfig(format!(
                "vocabulary {} yielded only {} of {} distinct predicates",
                spec.filter_spec.vocabulary,
                pool.len(),
                spec.predicate_pool
            )));
        }
        let law = Zipf::new(pool.len(), spec.pool_exponent);
        let mut live = BTreeMap::new();
        for id in 0..spec.subscribers {
            live.insert(id, law.sample(rng));
        }
        let events = ((spec.subscribers as f64) * spec.churn_fraction).round() as usize;
        let ids = live.keys().copied().collect();
        Ok(Self {
            pool,
            law,
            live,
            ids,
            next_id: spec.subscribers,
            events_per_tick: events.max(1),
        })
    }

    /// The initial population as filters, ready for bulk registration.
    pub fn initial_filters(&self) -> Vec<Filter> {
        self.live
            .iter()
            .map(|(&id, &p)| Filter::new(id, self.pool[p].iter().copied()))
            .collect()
    }

    /// The live population (current subscriber → predicate assignment) as
    /// filters — the brute-force oracle's view.
    pub fn live(&self) -> impl Iterator<Item = Filter> + '_ {
        self.live
            .iter()
            .map(|(&id, &p)| Filter::new(id, self.pool[p].iter().copied()))
    }

    /// Number of distinct predicates currently held by the live
    /// population (the expected canonical count under aggregation).
    pub fn distinct_live_predicates(&self) -> usize {
        let mut used: Vec<usize> = self.live.values().copied().collect();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Churn events per tick.
    pub fn events_per_tick(&self) -> usize {
        self.events_per_tick
    }

    /// Generates one tick of churn: `events_per_tick` turnover events,
    /// alternating leave-then-join (fresh subscriber id) with in-place
    /// predicate switches (displacement). The returned ops are already
    /// applied to the internal population model, so [`ChurnWorkload::live`]
    /// reflects the post-tick state.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<ChurnOp> {
        let mut ops = Vec::with_capacity(self.events_per_tick * 2);
        for event in 0..self.events_per_tick {
            if self.live.is_empty() {
                break;
            }
            // Uniform victim pick over the live population.
            let k = rng.gen_range(0..self.ids.len());
            let victim = self.ids[k];
            let predicate = self.law.sample(rng);
            if event % 2 == 0 {
                // Leave-then-join: the victim departs, a fresh subscriber
                // arrives under an independently drawn predicate.
                self.live.remove(&victim);
                self.ids.swap_remove(k);
                ops.push(ChurnOp::Unregister(FilterId(victim)));
                let id = self.next_id;
                self.next_id += 1;
                self.live.insert(id, predicate);
                self.ids.push(id);
                ops.push(ChurnOp::Register(Filter::new(
                    id,
                    self.pool[predicate].iter().copied(),
                )));
            } else {
                // Displacement: the same subscriber re-registers under a
                // different predicate in one control operation.
                self.live.insert(victim, predicate);
                ops.push(ChurnOp::Register(Filter::new(
                    victim,
                    self.pool[predicate].iter().copied(),
                )));
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn workload(subscribers: u64, seed: u64) -> ChurnWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        ChurnWorkload::new(&ChurnSpec::scaled(subscribers), &mut rng).unwrap()
    }

    #[test]
    fn pool_is_distinct_and_population_aliases_it() {
        let w = workload(400, 1);
        let distinct: BTreeSet<&Vec<TermId>> = w.pool.iter().collect();
        assert_eq!(distinct.len(), w.pool.len(), "pool must be distinct");
        // 400 subscribers over a ≤20-entry pool: aliasing is guaranteed.
        assert!(w.distinct_live_predicates() <= w.pool.len());
        assert!(w.distinct_live_predicates() < 400);
        assert_eq!(w.initial_filters().len(), 400);
    }

    #[test]
    fn ticks_preserve_population_and_model_tracks_ops() {
        let mut w = workload(300, 2);
        let mut rng = StdRng::seed_from_u64(99);
        // Shadow model applies the emitted ops independently.
        let mut shadow: BTreeMap<FilterId, Vec<TermId>> = w
            .initial_filters()
            .into_iter()
            .map(|f| (f.id(), f.terms().to_vec()))
            .collect();
        for _ in 0..5 {
            for op in w.tick(&mut rng) {
                match op {
                    ChurnOp::Register(f) => {
                        shadow.insert(f.id(), f.terms().to_vec());
                    }
                    ChurnOp::Unregister(id) => {
                        assert!(shadow.remove(&id).is_some(), "unregister of a ghost");
                    }
                }
            }
            assert_eq!(w.live().count(), 300, "turnover preserves the population");
            let live: BTreeMap<FilterId, Vec<TermId>> =
                w.live().map(|f| (f.id(), f.terms().to_vec())).collect();
            assert_eq!(live, shadow, "emitted ops must reproduce the model");
        }
    }

    #[test]
    fn popularity_skew_concentrates_the_head() {
        let w = workload(2_000, 3);
        // Zipf(1.0) over the pool: the most popular predicate must hold
        // far more subscribers than the uniform share.
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &p in w.live.values() {
            *counts.entry(p).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let uniform = 2_000 / w.pool.len();
        assert!(
            max > 2 * uniform,
            "Zipf head ({max}) should beat uniform share ({uniform})"
        );
    }
}
