//! Synthetic workload generators calibrated to the MOVE paper's datasets.
//!
//! The paper evaluates on three proprietary traces (§VI-A):
//!
//! 1. the **MSN** query log — 4 M keyword queries used as profile filters
//!    (2.843 terms per query on average; ≤1/2/3-term cumulative shares
//!    31.33 % / 67.75 % / 85.31 %; 757,996 distinct terms; top-1000 term
//!    popularity mass 0.437),
//! 2. **TREC AP** — 1,050 articles averaging 6,054.9 terms each, term
//!    frequency-rate entropy 9.4473 (nats),
//! 3. **TREC WT10G** — 1.69 M web documents averaging 64.8 terms each,
//!    entropy 6.7593 (nats; the *skewer* trace),
//!
//! plus the coupling between them: 26.9 % (AP) / 31.3 % (WT) of the top-1000
//! filter terms are also top-1000 document terms.
//!
//! None of the traces is redistributable, so this crate regenerates them
//! *from their published statistics*: [`FilterGenerator`] inverts the
//! head-mass statistic into a Zipf exponent, [`DocumentGenerator`] inverts
//! the entropy into a per-term document-frequency law (with saturation at
//! probability 1), and [`RankCoupling`] builds a rank permutation hitting
//! the published top-1000 overlap. [`DatasetReport`] measures every one of
//! the statistics above on a generated trace so the calibration can be
//! verified (see `EXPERIMENTS.md`, "Table W").
//!
//! # Examples
//!
//! ```
//! use move_workload::{FilterGenerator, MsnSpec};
//! use rand::SeedableRng;
//!
//! let spec = MsnSpec::scaled(10_000); // small vocabulary for tests
//! let gen = FilterGenerator::new(&spec).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let filters = gen.trace(1_000, &mut rng);
//! assert_eq!(filters.len(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod docs;
mod filters;
mod overlap;
mod report;
mod spec;

pub use churn::{ChurnOp, ChurnSpec, ChurnWorkload};
pub use docs::DocumentGenerator;
pub use filters::FilterGenerator;
pub use overlap::RankCoupling;
pub use report::{DatasetReport, DocReport, FilterReport};
pub use spec::{MsnSpec, TrecSpec};
