//! Measured dataset statistics — the reproduction of §VI-A's "Table W".

use move_stats::ranked_series;
use move_types::{Document, Filter};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Statistics measured on a generated filter trace, mirroring §VI-A(1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterReport {
    /// Number of filters measured.
    pub filters: u64,
    /// Number of distinct terms occurring in the trace.
    pub distinct_terms: usize,
    /// Mean terms per filter (paper: 2.843).
    pub mean_terms: f64,
    /// Cumulative share of filters with ≤1, ≤2, ≤3 terms
    /// (paper: 31.33 %, 67.75 %, 85.31 %).
    pub cumulative_123: [f64; 3],
    /// Share of all term occurrences carried by the top-`top_k` terms
    /// (paper: 0.437 for k = 1000).
    pub top_k_occurrence_share: f64,
    /// The `k` used above.
    pub top_k: usize,
}

impl FilterReport {
    /// Measures a filter trace. `vocabulary` bounds the term-id space;
    /// `top_k` selects the head for the occurrence-share statistic.
    pub fn measure(filters: &[Filter], vocabulary: usize, top_k: usize) -> Self {
        let mut occurrence = vec![0u64; vocabulary];
        let mut length_hist = [0u64; 4]; // ≤1, 2, 3, >3 buckets
        let mut term_sum = 0u64;
        for f in filters {
            for t in f.terms() {
                occurrence[t.as_usize()] += 1;
            }
            term_sum += f.len() as u64;
            let bucket = f.len().min(4) - 1;
            length_hist[bucket.min(3)] += 1;
        }
        let n = filters.len().max(1) as f64;
        let cum1 = length_hist[0] as f64 / n;
        let cum2 = cum1 + length_hist[1] as f64 / n;
        let cum3 = cum2 + length_hist[2] as f64 / n;

        let total: u64 = occurrence.iter().sum();
        let mut sorted = occurrence.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = sorted.iter().take(top_k).sum();

        Self {
            filters: filters.len() as u64,
            distinct_terms: occurrence.iter().filter(|&&c| c > 0).count(),
            mean_terms: term_sum as f64 / n,
            cumulative_123: [cum1, cum2, cum3],
            top_k_occurrence_share: if total > 0 {
                head as f64 / total as f64
            } else {
                0.0
            },
            top_k,
        }
    }

    /// Per-term popularity `pᵢ = |Pᵢ| / P` (fraction of filters containing
    /// term `i`) — the quantity ranked in Fig. 4.
    pub fn popularity(filters: &[Filter], vocabulary: usize) -> Vec<f64> {
        let mut containing = vec![0u64; vocabulary];
        for f in filters {
            for t in f.terms() {
                containing[t.as_usize()] += 1;
            }
        }
        let n = filters.len().max(1) as f64;
        containing.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// Statistics measured on a generated corpus, mirroring §VI-A(2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocReport {
    /// Number of documents measured.
    pub docs: u64,
    /// Mean distinct terms per document (paper: 6054.9 AP / 64.8 WT).
    pub mean_terms_per_doc: f64,
    /// Shannon entropy (nats) of the normalized document-frequency rates
    /// (paper: 9.4473 AP / 6.7593 WT).
    pub frequency_entropy_nats: f64,
    /// Number of distinct terms occurring in the corpus.
    pub distinct_terms: usize,
}

impl DocReport {
    /// Measures a corpus over a `vocabulary`-sized term-id space.
    pub fn measure(docs: &[Document], vocabulary: usize) -> Self {
        let df = Self::doc_frequency(docs, vocabulary);
        let total: u64 = df.iter().sum();
        let entropy = if total > 0 {
            let total = total as f64;
            -df.iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / total;
                    p * p.ln()
                })
                .sum::<f64>()
        } else {
            0.0
        };
        let mean =
            docs.iter().map(|d| d.distinct_terms() as f64).sum::<f64>() / docs.len().max(1) as f64;
        Self {
            docs: docs.len() as u64,
            mean_terms_per_doc: mean,
            frequency_entropy_nats: entropy,
            distinct_terms: df.iter().filter(|&&c| c > 0).count(),
        }
    }

    /// Per-term document frequency `|Qᵢ|` (number of documents containing
    /// term `i`) — the quantity ranked in Fig. 5 (as a rate, divided by the
    /// corpus size).
    pub fn doc_frequency(docs: &[Document], vocabulary: usize) -> Vec<u64> {
        let mut df = vec![0u64; vocabulary];
        for d in docs {
            for t in d.terms() {
                df[t.as_usize()] += 1;
            }
        }
        df
    }
}

/// The combined dataset report, including the filter/document popularity
/// overlap (§VI-A: 26.9 % AP, 31.3 % WT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Filter-side statistics.
    pub filters: FilterReport,
    /// Document-side statistics.
    pub docs: DocReport,
    /// Fraction of the top-`top_k` filter terms that are also top-`top_k`
    /// document terms.
    pub top_k_overlap: f64,
}

impl DatasetReport {
    /// Measures a combined trace over a shared `vocabulary`.
    pub fn measure(filters: &[Filter], docs: &[Document], vocabulary: usize, top_k: usize) -> Self {
        let fr = FilterReport::measure(filters, vocabulary, top_k);
        let dr = DocReport::measure(docs, vocabulary);
        let pop = FilterReport::popularity(filters, vocabulary);
        let df = DocReport::doc_frequency(docs, vocabulary);
        let top_filter: HashSet<usize> = top_ids(&pop, top_k);
        let top_doc: HashSet<usize> = top_ids(&df, top_k);
        let overlap = top_filter.intersection(&top_doc).count() as f64 / top_k.max(1) as f64;
        Self {
            filters: fr,
            docs: dr,
            top_k_overlap: overlap,
        }
    }

    /// The ranked filter-popularity series (Fig. 4).
    pub fn figure4(filters: &[Filter], vocabulary: usize) -> Vec<(usize, f64)> {
        let pop = FilterReport::popularity(filters, vocabulary);
        let nonzero: Vec<f64> = pop.into_iter().filter(|&p| p > 0.0).collect();
        ranked_series(&nonzero)
    }

    /// The ranked document-frequency-rate series (Fig. 5).
    pub fn figure5(docs: &[Document], vocabulary: usize) -> Vec<(usize, f64)> {
        let df = DocReport::doc_frequency(docs, vocabulary);
        let n = docs.len().max(1) as f64;
        let rates: Vec<f64> = df
            .into_iter()
            .filter(|&c| c > 0)
            .map(|c| c as f64 / n)
            .collect();
        ranked_series(&rates)
    }
}

fn top_ids<T: PartialOrd + Copy>(values: &[T], k: usize) -> HashSet<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("comparable"));
    idx.into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DocumentGenerator, FilterGenerator, MsnSpec, RankCoupling, TrecSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn filter_report_measures_generated_trace() {
        let spec = MsnSpec::scaled(4_000);
        let gen = FilterGenerator::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let filters = gen.trace(20_000, &mut rng);
        let r = FilterReport::measure(&filters, spec.vocabulary, spec.top_k);
        assert!((r.mean_terms - 2.843).abs() < 0.05);
        assert!((r.cumulative_123[0] - 0.3133).abs() < 0.02);
        // Coarse: without-replacement draws flatten the tiny scaled head.
        assert!((r.top_k_occurrence_share - spec.top_k_mass).abs() < 0.09);
        assert!(r.distinct_terms > 0);
    }

    #[test]
    fn overlap_statistic_matches_coupling() {
        let vocab = 3_000;
        let msn = MsnSpec::scaled(vocab);
        let fg = FilterGenerator::new(&msn).unwrap();
        let trec = TrecSpec::wt().scaled(vocab);
        let mut rng = StdRng::seed_from_u64(2);
        let coupling =
            RankCoupling::with_overlap(vocab, vocab, trec.top_k, trec.top_k_overlap, &mut rng)
                .unwrap();
        let dg = DocumentGenerator::new(&trec, coupling).unwrap();

        let filters = fg.trace(60_000, &mut rng);
        let docs = dg.corpus(3_000, &mut rng);
        let report = DatasetReport::measure(&filters, &docs, vocab, trec.top_k);
        // Empirical top-k sets are noisy versions of the design ranks; the
        // overlap should land in the target's neighbourhood.
        assert!(
            (report.top_k_overlap - trec.top_k_overlap).abs() < 0.15,
            "overlap {} vs target {}",
            report.top_k_overlap,
            trec.top_k_overlap
        );
    }

    #[test]
    fn figure_series_are_ranked_descending() {
        let spec = MsnSpec::scaled(2_000);
        let gen = FilterGenerator::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let filters = gen.trace(5_000, &mut rng);
        let fig4 = DatasetReport::figure4(&filters, spec.vocabulary);
        assert!(fig4.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(fig4[0].0, 1);
    }

    #[test]
    fn doc_report_entropy_near_design() {
        let spec = TrecSpec::wt().scaled(2_000);
        let gen = DocumentGenerator::new(&spec, RankCoupling::identity(2_000)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let docs = gen.corpus(4_000, &mut rng);
        let r = DocReport::measure(&docs, 2_000);
        assert!(
            (r.frequency_entropy_nats - spec.frequency_entropy_nats).abs() < 0.25,
            "measured {} vs design {}",
            r.frequency_entropy_nats,
            spec.frequency_entropy_nats
        );
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        let r = FilterReport::measure(&[], 10, 5);
        assert_eq!(r.filters, 0);
        let d = DocReport::measure(&[], 10);
        assert_eq!(d.frequency_entropy_nats, 0.0);
    }
}
