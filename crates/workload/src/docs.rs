//! The TREC-like document corpus generator.

use crate::{RankCoupling, TrecSpec};
use move_types::{DocId, Document, MoveError, Result, TermId};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};

/// Generates documents whose *document-frequency rates* follow a calibrated,
/// saturated Zipf law.
///
/// The model: term at frequency rank `r` appears in a document independently
/// with probability `q_r = min(cap, c·z_r)` where `z` is a Zipf pmf and
/// `cap` is the spec's `max_rate` (stop-word removal means no term appears
/// in every document). The scale
/// `c` is bisected so `Σ q_r` equals the target mean number of distinct
/// terms per document, and the Zipf exponent is bisected so the Shannon
/// entropy (nats) of the normalized rates hits the published value (9.4473
/// for AP, 6.7593 for WT). A per-document log-normal multiplier (mean 1)
/// adds realistic length dispersion.
///
/// Modelling document *inclusion* probabilities directly — rather than
/// drawing term occurrences — is what makes the published statistic (an
/// entropy over document-frequency rates, Fig. 5) directly calibratable,
/// and makes document generation O(head + |d|) instead of O(|d|²) rejection
/// sampling.
///
/// Document ranks are mapped to global term ids through a [`RankCoupling`]
/// so the filter/document popularity overlap matches §VI-A.
///
/// # Examples
///
/// ```
/// use move_workload::{DocumentGenerator, RankCoupling, TrecSpec};
/// use rand::SeedableRng;
///
/// let spec = TrecSpec::wt().scaled(2_000);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let coupling = RankCoupling::identity(2_000);
/// let gen = DocumentGenerator::new(&spec, coupling).unwrap();
/// let doc = gen.generate(0, &mut rng);
/// assert!(doc.distinct_terms() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DocumentGenerator {
    /// Inclusion probability per document rank, descending.
    q: Vec<f64>,
    /// Ranks `0..head_len` are sampled by explicit Bernoulli trials.
    head_len: usize,
    /// Cumulative normalized weights over the tail ranks
    /// (`head_len..vocabulary`).
    tail_cdf: Vec<f64>,
    /// `Σ q_r` over the tail.
    tail_mass: f64,
    coupling: RankCoupling,
    length_multiplier: Option<LogNormal<f64>>,
    spec: TrecSpec,
}

/// Ranks with inclusion probability above this are Bernoulli-sampled; the
/// rest are Poisson-approximated (every tail probability is ≤ this bound,
/// keeping the approximation sound).
const HEAD_THRESHOLD: f64 = 0.05;

impl DocumentGenerator {
    /// Calibrates a generator to `spec`, mapping document ranks through
    /// `coupling`.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Calibration`] when the entropy target is
    /// unreachable for the vocabulary, and [`MoveError::InvalidConfig`] when
    /// the coupling does not cover the vocabulary or the mean document size
    /// is out of range.
    pub fn new(spec: &TrecSpec, coupling: RankCoupling) -> Result<Self> {
        if coupling.len() < spec.vocabulary {
            return Err(MoveError::InvalidConfig(format!(
                "coupling covers {} ranks but vocabulary is {}",
                coupling.len(),
                spec.vocabulary
            )));
        }
        if spec.mean_terms_per_doc < 1.0 || spec.mean_terms_per_doc >= spec.vocabulary as f64 {
            return Err(MoveError::InvalidConfig(format!(
                "mean terms/doc {} must be in [1, vocabulary)",
                spec.mean_terms_per_doc
            )));
        }
        if !(0.0..=1.0).contains(&spec.max_rate) || spec.max_rate <= 0.0 {
            return Err(MoveError::InvalidConfig(format!(
                "max_rate {} must be in (0, 1]",
                spec.max_rate
            )));
        }
        let q = calibrate_rates(
            spec.vocabulary,
            spec.mean_terms_per_doc,
            spec.frequency_entropy_nats,
            spec.max_rate,
        )?;

        let head_len = q.partition_point(|&p| p > HEAD_THRESHOLD);
        let mut tail_cdf = Vec::with_capacity(q.len() - head_len);
        let mut acc = 0.0;
        for &p in &q[head_len..] {
            acc += p;
            tail_cdf.push(acc);
        }
        let tail_mass = acc;
        for c in &mut tail_cdf {
            *c /= tail_mass.max(f64::MIN_POSITIVE);
        }

        let length_multiplier = if spec.length_sigma > 0.0 {
            let sigma = spec.length_sigma;
            // mean of LogNormal(mu, sigma) is exp(mu + sigma^2/2) = 1.
            Some(
                LogNormal::new(-sigma * sigma / 2.0, sigma)
                    .map_err(|e| MoveError::InvalidConfig(format!("length sigma: {e}")))?,
            )
        } else {
            None
        };

        Ok(Self {
            q,
            head_len,
            tail_cdf,
            tail_mass,
            coupling,
            length_multiplier,
            spec: spec.clone(),
        })
    }

    /// The calibrated inclusion probabilities by document rank.
    pub fn rates(&self) -> &[f64] {
        &self.q
    }

    /// Entropy (nats) of the calibrated normalized rates.
    pub fn rate_entropy_nats(&self) -> f64 {
        let total: f64 = self.q.iter().sum();
        -self
            .q
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| {
                let r = p / total;
                r * r.ln()
            })
            .sum::<f64>()
    }

    /// Expected number of distinct terms per (unit-multiplier) document.
    pub fn expected_terms_per_doc(&self) -> f64 {
        self.q.iter().sum()
    }

    /// The spec this generator was calibrated to.
    pub fn spec(&self) -> &TrecSpec {
        &self.spec
    }

    /// Generates one document.
    pub fn generate<R: Rng + ?Sized>(&self, id: impl Into<DocId>, rng: &mut R) -> Document {
        let m = self
            .length_multiplier
            .as_ref()
            .map_or(1.0, |d| d.sample(rng));
        let mut ranks: Vec<usize> = Vec::with_capacity(self.expected_terms_per_doc() as usize + 8);

        // Head: explicit Bernoulli per rank.
        for (r, &p) in self.q[..self.head_len].iter().enumerate() {
            if rng.gen::<f64>() < (m * p).min(1.0) {
                ranks.push(r);
            }
        }
        // Tail: Poisson count, weighted draws, dedup by sort.
        let lambda = m * self.tail_mass;
        if lambda > 0.0 && !self.tail_cdf.is_empty() {
            let k = Poisson::new(lambda)
                .map(|d| d.sample(rng) as usize)
                .unwrap_or(0);
            let mut tail: Vec<usize> = (0..k)
                .map(|_| {
                    let u: f64 = rng.gen();
                    let i = self.tail_cdf.partition_point(|&c| c <= u);
                    self.head_len + i.min(self.tail_cdf.len() - 1)
                })
                .collect();
            tail.sort_unstable();
            tail.dedup();
            ranks.extend(tail);
        }
        if ranks.is_empty() {
            // Degenerate draw: documents are never empty in the corpora;
            // fall back to the most frequent term.
            ranks.push(0);
        }

        // Map ranks to global term ids and attach occurrence counts
        // (1 + Geometric(1/2), capped) for the VSM extension.
        let mut occurrences = Vec::with_capacity(ranks.len() * 2);
        for r in ranks {
            let t: TermId = self.coupling.term(r);
            let mut count = 1;
            while count < 8 && rng.gen::<bool>() {
                count += 1;
            }
            for _ in 0..count {
                occurrences.push(t);
            }
        }
        Document::from_occurrences(id, occurrences)
    }

    /// Generates a corpus of `n` documents with ids `0..n`.
    pub fn corpus<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> Vec<Document> {
        (0..n).map(|id| self.generate(id, rng)).collect()
    }
}

/// Finds `q_r = min(1, c·z_r)` with `Σ q = mean_terms` and normalized
/// entropy `target_nats`, bisecting the Zipf exponent (outer, entropy is
/// decreasing in α) and the scale `c` (inner, the sum is increasing in `c`).
fn calibrate_rates(
    vocabulary: usize,
    mean_terms: f64,
    target_nats: f64,
    max_rate: f64,
) -> Result<Vec<f64>> {
    let rates_for = |alpha: f64| -> Vec<f64> {
        // Zipf pmf.
        let mut z: Vec<f64> = (0..vocabulary)
            .map(|r| ((r + 1) as f64).powf(-alpha))
            .collect();
        let total: f64 = z.iter().sum();
        for v in &mut z {
            *v /= total;
        }
        // Inner bisection on the scale.
        let sum_for = |c: f64| -> f64 { z.iter().map(|&v| (c * v).min(max_rate)).sum() };
        let mut hi = mean_terms.max(1.0);
        while sum_for(hi) < mean_terms && hi < 1e18 {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if sum_for(mid) < mean_terms {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        z.iter().map(|&v| (c * v).min(max_rate)).collect()
    };
    let entropy_nats = |q: &[f64]| -> f64 {
        let total: f64 = q.iter().sum();
        -q.iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| {
                let r = p / total;
                r * r.ln()
            })
            .sum::<f64>()
    };

    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    let h_uniformish = entropy_nats(&rates_for(lo));
    let h_skewed = entropy_nats(&rates_for(hi));
    if target_nats > h_uniformish + 1e-3 || target_nats < h_skewed - 1e-3 {
        return Err(MoveError::Calibration(format!(
            "entropy {target_nats} nats unreachable in [{h_skewed:.3}, {h_uniformish:.3}] \
             for vocabulary {vocabulary}, mean {mean_terms}"
        )));
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if entropy_nats(&rates_for(mid)) > target_nats {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(rates_for(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wt_small() -> (TrecSpec, DocumentGenerator) {
        let spec = TrecSpec::wt().scaled(3_000);
        let gen = DocumentGenerator::new(&spec, RankCoupling::identity(3_000)).unwrap();
        (spec, gen)
    }

    #[test]
    fn calibration_hits_mean_and_entropy() {
        let (spec, gen) = wt_small();
        assert!(
            (gen.expected_terms_per_doc() - spec.mean_terms_per_doc).abs()
                / spec.mean_terms_per_doc
                < 0.01,
            "expected {} vs target {}",
            gen.expected_terms_per_doc(),
            spec.mean_terms_per_doc
        );
        assert!(
            (gen.rate_entropy_nats() - spec.frequency_entropy_nats).abs() < 0.05,
            "entropy {} vs target {}",
            gen.rate_entropy_nats(),
            spec.frequency_entropy_nats
        );
    }

    #[test]
    fn rates_are_valid_probabilities_descending() {
        let (_, gen) = wt_small();
        let q = gen.rates();
        assert!(q.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(q.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn empirical_document_size_tracks_mean() {
        let (spec, gen) = wt_small();
        let mut rng = StdRng::seed_from_u64(8);
        let docs = gen.corpus(2_000, &mut rng);
        let mean = docs.iter().map(|d| d.distinct_terms() as f64).sum::<f64>() / docs.len() as f64;
        // The log-normal multiplier saturates head probabilities at 1, which
        // shaves a little off the mean; allow 15 %.
        assert!(
            (mean - spec.mean_terms_per_doc).abs() / spec.mean_terms_per_doc < 0.15,
            "mean distinct {mean} vs {}",
            spec.mean_terms_per_doc
        );
    }

    #[test]
    fn ap_documents_are_much_larger_than_wt() {
        let ap_spec = TrecSpec::ap().scaled(3_000);
        let ap = DocumentGenerator::new(&ap_spec, RankCoupling::identity(3_000)).unwrap();
        let (_, wt) = wt_small();
        let mut rng = StdRng::seed_from_u64(9);
        let ap_mean = ap
            .corpus(200, &mut rng)
            .iter()
            .map(|d| d.distinct_terms())
            .sum::<usize>() as f64
            / 200.0;
        let wt_mean = wt
            .corpus(200, &mut rng)
            .iter()
            .map(|d| d.distinct_terms())
            .sum::<usize>() as f64
            / 200.0;
        assert!(
            ap_mean > 5.0 * wt_mean,
            "ap {ap_mean} should dwarf wt {wt_mean}"
        );
    }

    #[test]
    fn documents_never_empty() {
        let (_, gen) = wt_small();
        let mut rng = StdRng::seed_from_u64(10);
        assert!(gen
            .corpus(500, &mut rng)
            .iter()
            .all(|d| d.distinct_terms() > 0));
    }

    #[test]
    fn coupling_too_small_rejected() {
        let spec = TrecSpec::wt().scaled(3_000);
        assert!(matches!(
            DocumentGenerator::new(&spec, RankCoupling::identity(100)),
            Err(MoveError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unreachable_entropy_rejected() {
        let mut spec = TrecSpec::wt().scaled(3_000);
        spec.frequency_entropy_nats = 20.0; // above ln(3000)
        assert!(matches!(
            DocumentGenerator::new(&spec, RankCoupling::identity(3_000)),
            Err(MoveError::Calibration(_))
        ));
    }
}
