//! Dataset specifications: the published statistics the generators target.

use serde::{Deserialize, Serialize};

/// Statistics of the MSN query trace used as the filter workload
/// (paper §VI-A(1), Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsnSpec {
    /// Number of distinct query terms (757,996 in the trace).
    pub vocabulary: usize,
    /// Cumulative probability that a filter has ≤ 1, ≤ 2, ≤ 3 terms
    /// (31.33 %, 67.75 %, 85.31 %).
    pub length_cumulative_123: [f64; 3],
    /// Mean number of terms per filter (2.843).
    pub mean_terms: f64,
    /// Longest generated filter (the tail beyond 3 terms is geometric,
    /// truncated here).
    pub max_terms: usize,
    /// Head size for the popularity-mass statistic (1,000).
    pub top_k: usize,
    /// Popularity mass of the top `top_k` terms (0.437).
    pub top_k_mass: f64,
    /// Ceiling on a single term's popularity `pᵢ = |Pᵢ|/P` (fraction of
    /// filters containing it). Fig. 4's ranked popularity tops out near
    /// 10⁻² — real query heads plateau instead of following the power law
    /// to its peak.
    pub max_popularity: f64,
}

impl MsnSpec {
    /// The paper's trace at full scale.
    pub fn paper() -> Self {
        Self {
            vocabulary: 757_996,
            length_cumulative_123: [0.3133, 0.6775, 0.8531],
            mean_terms: 2.843,
            max_terms: 20,
            top_k: 1_000,
            top_k_mass: 0.437,
            max_popularity: 0.01,
        }
    }

    /// The paper's shape over a smaller vocabulary — for tests and
    /// laptop-scale experiments. The head size stays the paper's 1000 terms
    /// wherever the vocabulary permits (only the *tail* of the trace is
    /// truncated), so per-term popularity magnitudes — hence posting-list
    /// lengths and hot-spot intensities — match the paper's Fig. 4 rather
    /// than being compressed into a sharper head. For tiny test
    /// vocabularies the head shrinks to a quarter of the vocabulary.
    pub fn scaled(vocabulary: usize) -> Self {
        let paper = Self::paper();
        Self {
            vocabulary,
            top_k: paper.top_k.min((vocabulary / 4).max(1)),
            ..paper
        }
    }
}

impl Default for MsnSpec {
    /// [`MsnSpec::paper`].
    fn default() -> Self {
        Self::paper()
    }
}

/// Statistics of a TREC-like document corpus (paper §VI-A(2), Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrecSpec {
    /// Corpus name, used in reports ("trec-ap", "trec-wt").
    pub name: String,
    /// Number of distinct terms occurring in documents.
    pub vocabulary: usize,
    /// Mean number of distinct terms per document (6,054.9 for AP, 64.8
    /// for WT).
    pub mean_terms_per_doc: f64,
    /// Shannon entropy, in nats, of the normalized document-frequency
    /// rates (9.4473 for AP, 6.7593 for WT). Nats because the paper's
    /// values lie below the bits-floor `log2(mean_terms_per_doc)` but above
    /// the nats-floor `ln(mean_terms_per_doc)`.
    pub frequency_entropy_nats: f64,
    /// σ of the per-document log-normal length multiplier (mean 1);
    /// 0 gives near-constant document lengths.
    pub length_sigma: f64,
    /// Head size for the overlap statistic (1,000).
    pub top_k: usize,
    /// Fraction of the top-`top_k` *filter* terms that are also
    /// top-`top_k` *document* terms (0.269 for AP, 0.313 for WT).
    pub top_k_overlap: f64,
    /// Ceiling on any single term's document-frequency rate. Stop-word
    /// removal means no surviving term appears in every document; the cap
    /// must stay above `mean_terms_per_doc / e^entropy` or the entropy
    /// target becomes unreachable (AP's 9.4473 nats over 6054.9 terms/doc
    /// forces rates up to ~0.5, so AP gets a high cap).
    pub max_rate: f64,
}

impl TrecSpec {
    /// TREC AP: few, very large articles.
    pub fn ap() -> Self {
        Self {
            name: "trec-ap".into(),
            vocabulary: 80_000,
            mean_terms_per_doc: 6_054.9,
            frequency_entropy_nats: 9.4473,
            length_sigma: 0.3,
            top_k: 1_000,
            top_k_overlap: 0.269,
            max_rate: 0.8,
        }
    }

    /// TREC WT10G: many small web documents; the skewer frequency law.
    pub fn wt() -> Self {
        Self {
            name: "trec-wt".into(),
            vocabulary: 200_000,
            mean_terms_per_doc: 64.8,
            frequency_entropy_nats: 6.7593,
            length_sigma: 0.6,
            top_k: 1_000,
            top_k_overlap: 0.313,
            max_rate: 0.35,
        }
    }

    /// The same shape over a smaller vocabulary, with the mean document
    /// size capped to stay below the vocabulary — for tests.
    pub fn scaled(self, vocabulary: usize) -> Self {
        let shrink = vocabulary as f64 / self.vocabulary as f64;
        let mean = self
            .mean_terms_per_doc
            .min(vocabulary as f64 / 4.0)
            .max(2.0);
        // Entropy floor moves with the mean (and with the rate cap: at
        // least mean/max_rate terms must carry mass); keep the target
        // reachable by shrinking it when the support shrinks.
        let floor = (mean / self.max_rate).ln();
        let cap = (vocabulary as f64).ln();
        let entropy = self
            .frequency_entropy_nats
            .clamp(floor + 0.2, cap - 0.05)
            .min(self.frequency_entropy_nats);
        // As with the MSN head, keep the paper's 1000-term head whenever
        // the vocabulary permits so per-term frequency-rate magnitudes
        // (Fig. 5) survive scaling; `shrink` is retained for callers that
        // want proportional heads on tiny test vocabularies.
        let _ = shrink;
        Self {
            vocabulary,
            mean_terms_per_doc: mean,
            frequency_entropy_nats: entropy,
            top_k: self.top_k.min((vocabulary / 4).max(1)),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_match_section_vi() {
        let msn = MsnSpec::paper();
        assert_eq!(msn.vocabulary, 757_996);
        assert!((msn.mean_terms - 2.843).abs() < 1e-12);
        assert!((msn.top_k_mass - 0.437).abs() < 1e-12);

        let ap = TrecSpec::ap();
        assert!((ap.mean_terms_per_doc - 6054.9).abs() < 1e-9);
        let wt = TrecSpec::wt();
        assert!((wt.frequency_entropy_nats - 6.7593).abs() < 1e-9);
        assert!(wt.frequency_entropy_nats < ap.frequency_entropy_nats);
    }

    #[test]
    fn entropy_targets_are_consistent_in_nats() {
        // The published entropies must sit above the nats floor
        // ln(mean terms/doc) — the sanity check that forced the nats
        // interpretation.
        for spec in [TrecSpec::ap(), TrecSpec::wt()] {
            assert!(spec.frequency_entropy_nats > spec.mean_terms_per_doc.ln());
            assert!(spec.frequency_entropy_nats < (spec.vocabulary as f64).ln());
        }
    }

    #[test]
    fn scaled_keeps_targets_reachable() {
        let msn = MsnSpec::scaled(10_000);
        assert_eq!(msn.vocabulary, 10_000);
        assert_eq!(msn.top_k, 1_000, "paper head kept when vocab permits");
        assert_eq!(MsnSpec::scaled(100).top_k, 25, "tiny vocab shrinks head");

        let wt = TrecSpec::wt().scaled(5_000);
        assert!(wt.mean_terms_per_doc <= 1_250.0);
        assert!(wt.frequency_entropy_nats < (5_000f64).ln());
        assert!(wt.frequency_entropy_nats > wt.mean_terms_per_doc.ln());
    }
}
