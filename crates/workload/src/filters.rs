//! The MSN-like filter-trace generator.

use crate::MsnSpec;
use move_stats::{calibrate_head_mass_capped, Discrete, Zipf};
use move_types::{Filter, FilterId, MoveError, Result, TermId};
use rand::Rng;

/// Generates keyword filters matching the MSN trace statistics: the filter
/// *length* law follows the published ≤1/≤2/≤3-term cumulative shares with a
/// truncated-geometric tail tuned to the published mean, and each term is an
/// independent draw (without replacement within a filter) from a Zipf law
/// whose exponent is calibrated so the top-`k` terms carry the published
/// share of term occurrences.
///
/// Term ids are popularity ranks: `TermId(0)` is the most popular filter
/// term.
///
/// # Examples
///
/// ```
/// use move_workload::{FilterGenerator, MsnSpec};
/// use rand::SeedableRng;
///
/// let gen = FilterGenerator::new(&MsnSpec::scaled(5_000)).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let f = gen.generate(0, &mut rng);
/// assert!(!f.is_empty() && f.len() <= 20);
/// ```
#[derive(Debug, Clone)]
pub struct FilterGenerator {
    term_law: Zipf,
    /// Distribution over filter lengths; index = length, index 0 weight 0.
    length_law: Discrete,
}

impl FilterGenerator {
    /// Calibrates a generator to `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Calibration`] if the head-mass or mean-length
    /// target is unreachable (e.g. a vocabulary too small for the requested
    /// head mass, or `max_terms` too small for the mean).
    pub fn new(spec: &MsnSpec) -> Result<Self> {
        if spec.vocabulary == 0 {
            return Err(MoveError::InvalidConfig(
                "vocabulary must be positive".into(),
            ));
        }
        // A filter contains a term with probability ≈ mean_terms × the
        // term's occurrence share, so the popularity ceiling maps to an
        // occurrence-share cap of max_popularity / mean_terms.
        let occurrence_cap = (spec.max_popularity / spec.mean_terms).clamp(1e-9, 1.0);
        let alpha = calibrate_head_mass_capped(
            spec.vocabulary,
            spec.top_k,
            spec.top_k_mass,
            occurrence_cap,
        )
        .map_err(|e| MoveError::Calibration(e.to_string()))?;
        let term_law = Zipf::with_cap(spec.vocabulary, alpha, occurrence_cap);
        let length_law = Self::length_law(spec)?;
        Ok(Self {
            term_law,
            length_law,
        })
    }

    /// Builds the length distribution: the three published point masses plus
    /// a truncated-geometric tail over `4..=max_terms` whose ratio is
    /// bisected so the overall mean hits `spec.mean_terms`.
    fn length_law(spec: &MsnSpec) -> Result<Discrete> {
        let [c1, c2, c3] = spec.length_cumulative_123;
        if !(0.0 < c1 && c1 <= c2 && c2 <= c3 && c3 <= 1.0) {
            return Err(MoveError::InvalidConfig(
                "length cumulative shares must be increasing probabilities".into(),
            ));
        }
        let head = [c1, c2 - c1, c3 - c2];
        let tail_mass = 1.0 - c3;
        let head_mean: f64 = head.iter().zip(1..).map(|(p, l)| p * l as f64).sum();

        let max = spec.max_terms.max(4);
        let weights_for = |rho: f64| -> Vec<f64> {
            let mut w = vec![0.0; max + 1];
            w[1] = head[0];
            w[2] = head[1];
            w[3] = head[2];
            if tail_mass > 0.0 {
                let mut geo: Vec<f64> = (4..=max).map(|l| rho.powi((l - 4) as i32)).collect();
                let norm: f64 = geo.iter().sum();
                for g in &mut geo {
                    *g *= tail_mass / norm;
                }
                w[4..=max].copy_from_slice(&geo);
            }
            w
        };
        let mean_of = |w: &[f64]| -> f64 { w.iter().enumerate().map(|(l, p)| l as f64 * p).sum() };

        if tail_mass <= f64::EPSILON {
            let w = weights_for(0.0);
            return Ok(Discrete::new(&w));
        }

        // Bisection over the geometric ratio: the mean increases with rho.
        let (mut lo, mut hi) = (1e-9, 1.0 - 1e-9);
        let reachable = (mean_of(&weights_for(lo)), mean_of(&weights_for(hi)));
        if spec.mean_terms < reachable.0 || spec.mean_terms > reachable.1 {
            return Err(MoveError::Calibration(format!(
                "mean filter length {} unreachable in [{:.3}, {:.3}] \
                 (head mean {head_mean:.3}, max_terms {max})",
                spec.mean_terms, reachable.0, reachable.1
            )));
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if mean_of(&weights_for(mid)) < spec.mean_terms {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Discrete::new(&weights_for(0.5 * (lo + hi))))
    }

    /// The calibrated per-occurrence term-popularity law.
    pub fn term_law(&self) -> &Zipf {
        &self.term_law
    }

    /// Mean filter length of the calibrated length law.
    pub fn mean_length(&self) -> f64 {
        self.length_law.mean()
    }

    /// Generates one filter.
    pub fn generate<R: Rng + ?Sized>(&self, id: impl Into<FilterId>, rng: &mut R) -> Filter {
        let len = self.length_law.sample(rng).min(self.term_law.len());
        let ranks = self.term_law.sample_distinct(len, rng);
        Filter::new(id, ranks.into_iter().map(|r| TermId(r as u32)))
    }

    /// Generates a trace of `n` filters with ids `0..n`.
    pub fn trace<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> Vec<Filter> {
        (0..n).map(|id| self.generate(id, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_gen() -> FilterGenerator {
        FilterGenerator::new(&MsnSpec::scaled(5_000)).unwrap()
    }

    #[test]
    fn length_law_hits_published_shares_and_mean() {
        let gen = small_gen();
        assert!((gen.mean_length() - 2.843).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(11);
        let filters = gen.trace(40_000, &mut rng);
        let n = filters.len() as f64;
        let le = |k: usize| filters.iter().filter(|f| f.len() <= k).count() as f64 / n;
        assert!((le(1) - 0.3133).abs() < 0.01, "≤1 share {}", le(1));
        assert!((le(2) - 0.6775).abs() < 0.01, "≤2 share {}", le(2));
        assert!((le(3) - 0.8531).abs() < 0.01, "≤3 share {}", le(3));
        let mean = filters.iter().map(|f| f.len() as f64).sum::<f64>() / n;
        assert!((mean - 2.843).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn head_mass_is_calibrated() {
        let spec = MsnSpec::scaled(5_000);
        let gen = FilterGenerator::new(&spec).unwrap();
        let mass = gen.term_law().head_mass(spec.top_k);
        assert!((mass - spec.top_k_mass).abs() < 1e-3, "head mass {mass}");
    }

    #[test]
    fn empirical_occurrence_share_tracks_target() {
        let spec = MsnSpec::scaled(5_000);
        let gen = FilterGenerator::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let filters = gen.trace(30_000, &mut rng);
        let mut counts = vec![0u64; spec.vocabulary];
        for f in &filters {
            for t in f.terms() {
                counts[t.as_usize()] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = sorted[..spec.top_k].iter().sum();
        let share = head as f64 / total as f64;
        // Sampling without replacement within a filter flattens the head,
        // noticeably so at this scaled-down vocabulary where the head is
        // only ~7 terms (at paper scale the head is 1000 terms and the
        // distortion is negligible). Allow a coarse tolerance here; the
        // design-level head mass is checked exactly in
        // `head_mass_is_calibrated`.
        assert!(
            (share - spec.top_k_mass).abs() < 0.09,
            "occurrence share {share}"
        );
    }

    #[test]
    fn filters_are_nonempty_and_within_bounds() {
        let gen = small_gen();
        let mut rng = StdRng::seed_from_u64(3);
        for f in gen.trace(2_000, &mut rng) {
            assert!(!f.is_empty());
            assert!(f.len() <= 20);
            assert!(f.terms().iter().all(|t| t.as_usize() < 5_000));
        }
    }

    #[test]
    fn tiny_vocabulary_still_works() {
        // Head-mass target 0.437 for top-k with a 50-term vocabulary: the
        // scaled spec shrinks top_k to 1, making mass 0.437 reachable.
        let gen = FilterGenerator::new(&MsnSpec::scaled(50)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let f = gen.generate(0, &mut rng);
        assert!(!f.is_empty());
    }

    #[test]
    fn zero_vocabulary_rejected() {
        let mut spec = MsnSpec::paper();
        spec.vocabulary = 0;
        assert!(matches!(
            FilterGenerator::new(&spec),
            Err(MoveError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unreachable_mean_rejected() {
        let mut spec = MsnSpec::scaled(1_000);
        spec.mean_terms = 19.0; // tail cannot drag the mean that high
        assert!(matches!(
            FilterGenerator::new(&spec),
            Err(MoveError::Calibration(_))
        ));
    }
}
