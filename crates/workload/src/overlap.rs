//! Coupling between filter-term popularity ranks and document-term
//! frequency ranks.

use move_types::{MoveError, Result, TermId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A permutation mapping *document-frequency ranks* to global [`TermId`]s
/// (which are, by construction of [`crate::FilterGenerator`],
/// *filter-popularity ranks*).
///
/// The paper measures how strongly the two popularity orders agree: "Among
/// the top-1000 popular query terms, 26.9 % of them are among the top-1000
/// frequent document terms in the TREC AP dataset, and 31.3 % … in the TREC
/// WT dataset" (§VI-A). This structure realizes exactly that statistic: a
/// chosen fraction of the top-`k` document ranks land on top-`k` term ids,
/// the rest land outside, and everything else is a uniform random matching.
///
/// # Examples
///
/// ```
/// use move_workload::RankCoupling;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let c = RankCoupling::with_overlap(10_000, 20_000, 1_000, 0.269, &mut rng).unwrap();
/// assert!((c.top_k_overlap(1_000) - 0.269).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct RankCoupling {
    /// `map[doc_rank]` = global term id.
    map: Vec<TermId>,
}

impl RankCoupling {
    /// The identity coupling (document rank `r` is term `r`) — maximal
    /// overlap.
    pub fn identity(doc_vocabulary: usize) -> Self {
        Self {
            map: (0..doc_vocabulary).map(|r| TermId(r as u32)).collect(),
        }
    }

    /// Builds a coupling of `doc_vocabulary` document ranks into
    /// `global_vocabulary` term ids where a fraction `overlap` of the top
    /// `top_k` document ranks map into the top `top_k` term ids.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::InvalidConfig`] if `doc_vocabulary >
    /// global_vocabulary`, `top_k` exceeds either vocabulary, or `overlap`
    /// is not a probability.
    pub fn with_overlap<R: Rng + ?Sized>(
        doc_vocabulary: usize,
        global_vocabulary: usize,
        top_k: usize,
        overlap: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if doc_vocabulary > global_vocabulary {
            return Err(MoveError::InvalidConfig(format!(
                "doc vocabulary {doc_vocabulary} exceeds global vocabulary {global_vocabulary}"
            )));
        }
        if top_k > doc_vocabulary || top_k == 0 {
            return Err(MoveError::InvalidConfig(format!(
                "top_k {top_k} must be in 1..={doc_vocabulary}"
            )));
        }
        if !(0.0..=1.0).contains(&overlap) {
            return Err(MoveError::InvalidConfig(format!(
                "overlap {overlap} is not a probability"
            )));
        }

        let hits = (overlap * top_k as f64).round() as usize;
        // Hit positions are evenly striped across the head, and a hit doc
        // rank maps to the filter rank at the *same* position — hot
        // document terms are hot query terms ("news" is frequent in both
        // worlds). This keeps the hot-spot structure deterministic and
        // rank-correlated instead of a per-seed coin flip at the very top,
        // while hitting the published overlap fraction exactly.
        let mut map = vec![TermId(0); doc_vocabulary];
        let mut is_hit = vec![false; top_k];
        if hits > 0 {
            let stride = top_k as f64 / hits as f64;
            for j in 0..hits {
                is_hit[(j as f64 * stride) as usize] = true;
            }
        }
        let mut leftover_head: Vec<u32> = Vec::new();
        let mut tail_ids: Vec<u32> = (top_k as u32..global_vocabulary as u32).collect();
        tail_ids.shuffle(rng);
        let mut tail_iter = tail_ids.into_iter();
        for (doc_rank, &hit) in is_hit.iter().enumerate() {
            if hit {
                map[doc_rank] = TermId(doc_rank as u32);
            } else {
                leftover_head.push(doc_rank as u32);
                map[doc_rank] = TermId(tail_iter.next().expect("enough tail ids"));
            }
        }
        // Remaining doc ranks take the leftover head ids and tail ids,
        // shuffled together (leftover head ids spread across the doc tail).
        let mut rest: Vec<u32> = leftover_head.into_iter().chain(tail_iter).collect();
        rest.shuffle(rng);
        for (doc_rank, id) in (top_k..doc_vocabulary).zip(rest) {
            map[doc_rank] = TermId(id);
        }
        Ok(Self { map })
    }

    /// The term id a document rank maps to.
    ///
    /// # Panics
    ///
    /// Panics if `doc_rank` is outside the coupling.
    pub fn term(&self, doc_rank: usize) -> TermId {
        self.map[doc_rank]
    }

    /// Number of document ranks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the coupling is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The realized overlap: fraction of the top-`k` document ranks mapping
    /// to top-`k` term ids.
    pub fn top_k_overlap(&self, k: usize) -> f64 {
        let k = k.min(self.map.len());
        if k == 0 {
            return 0.0;
        }
        let hits = self.map[..k].iter().filter(|t| t.as_usize() < k).count();
        hits as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_has_full_overlap() {
        let c = RankCoupling::identity(100);
        assert_eq!(c.top_k_overlap(10), 1.0);
        assert_eq!(c.term(5), TermId(5));
    }

    #[test]
    fn coupling_is_injective() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = RankCoupling::with_overlap(1_000, 2_000, 100, 0.3, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in 0..c.len() {
            assert!(seen.insert(c.term(r)), "duplicate mapping at rank {r}");
            assert!(c.term(r).as_usize() < 2_000);
        }
    }

    #[test]
    fn overlap_targets_hit_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        for target in [0.0, 0.269, 0.313, 1.0] {
            let c = RankCoupling::with_overlap(5_000, 5_000, 1_000, target, &mut rng).unwrap();
            assert!(
                (c.top_k_overlap(1_000) - target).abs() < 1e-3,
                "target {target} got {}",
                c.top_k_overlap(1_000)
            );
        }
    }

    #[test]
    fn hits_are_rank_correlated_and_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(99);
        let ca = RankCoupling::with_overlap(5_000, 5_000, 1_000, 0.313, &mut a).unwrap();
        let cb = RankCoupling::with_overlap(5_000, 5_000, 1_000, 0.313, &mut b).unwrap();
        // The head's hit structure does not depend on the seed.
        for r in 0..1_000 {
            let hit_a = ca.term(r).as_usize() < 1_000;
            let hit_b = cb.term(r).as_usize() < 1_000;
            assert_eq!(hit_a, hit_b, "hit structure differs at rank {r}");
            if hit_a {
                assert_eq!(ca.term(r).as_usize(), r, "hits map to the same rank");
            }
        }
        // Rank 0 (the most frequent document term) is always a hit.
        assert_eq!(ca.term(0), TermId(0));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(RankCoupling::with_overlap(100, 50, 10, 0.5, &mut rng).is_err());
        assert!(RankCoupling::with_overlap(100, 100, 0, 0.5, &mut rng).is_err());
        assert!(RankCoupling::with_overlap(100, 100, 200, 0.5, &mut rng).is_err());
        assert!(RankCoupling::with_overlap(100, 100, 10, 1.5, &mut rng).is_err());
    }
}
