//! The `move-cli` interactive shell. See `move_cli` (the library) for the
//! command language.

use move_cli::{Command, Session};
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let racks = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let mut session = match Session::new(nodes, racks) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("move-cli: {nodes} simulated nodes over {racks} racks (try `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("move> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line) {
            Ok(cmd) => println!("{}", session.run(cmd)),
            Err(msg) => println!("{msg}"),
        }
        if session.finished {
            break;
        }
    }
}
