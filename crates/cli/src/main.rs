//! The `move-cli` interactive shell. See `move_cli` (the library) for the
//! command language.
//!
//! Usage: `move-cli [live] [--fault-plan <spec>] [--publishers <n>]
//! [--match-lanes <n>] [--lane-cost-target <cost>] [--join <at-doc>]
//! [--churn <rate>@<pool>]
//! [nodes] [racks]` — with `live`,
//! commands run on the concurrent `move-runtime` engine instead of the
//! simulator; `--fault-plan kill=<fraction>@<doc>[,seed=<seed>]` crashes
//! that share of the workers mid-session so supervised restarts can be
//! watched live; `--publishers <n>` routes documents through a pool of
//! `n` concurrent ingest threads instead of the single router (the
//! session report then breaks routed/shed counters out per ingest
//! thread); `--match-lanes <n>` fans each worker's match batches over a
//! work-stealing pool of `n` match lanes instead of matching inline;
//! `--lane-cost-target <cost>` sets the posting-scan cost the lane
//! planner packs into each stealable unit (smaller = finer units, more
//! steal opportunities; larger = less scheduling overhead);
//! `--join <at-doc>` grows the cluster by one node through the live
//! rebalancer once that many documents have been published;
//! `--churn <rate>@<pool>` boots a synthetic population of `pool`
//! subscribers and turns over `rate` of it through the engine's control
//! plane per published document (the quit report then shows the
//! control-plane counters: registrations, canonical hits, fan-out bytes).

use move_cli::{parse_churn_plan, parse_fault_plan, Command, LiveSession, Session};
use move_runtime::FaultPlan;
use std::io::{BufRead, Write};

enum Shell {
    Sim(Box<Session>),
    Live(Box<LiveSession>),
}

impl Shell {
    fn run(&mut self, cmd: Command) -> String {
        match self {
            Self::Sim(s) => s.run(cmd),
            Self::Live(s) => s.run(cmd),
        }
    }

    fn finished(&self) -> bool {
        match self {
            Self::Sim(s) => s.finished,
            Self::Live(s) => s.finished,
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let live = args.peek().is_some_and(|a| a == "live");
    if live {
        args.next();
    }
    let mut fault_spec: Option<String> = None;
    let mut publishers: Option<String> = None;
    let mut match_lanes: Option<String> = None;
    let mut cost_target: Option<String> = None;
    let mut join_spec: Option<String> = None;
    let mut churn_spec: Option<String> = None;
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        if let Some(spec) = arg.strip_prefix("--fault-plan=") {
            fault_spec = Some(spec.to_owned());
        } else if arg == "--fault-plan" {
            match args.next() {
                Some(spec) => fault_spec = Some(spec),
                None => {
                    eprintln!("--fault-plan needs a spec: kill=<fraction>@<doc>[,seed=<seed>]");
                    std::process::exit(1);
                }
            }
        } else if let Some(n) = arg.strip_prefix("--publishers=") {
            publishers = Some(n.to_owned());
        } else if arg == "--publishers" {
            match args.next() {
                Some(n) => publishers = Some(n),
                None => {
                    eprintln!("--publishers needs a thread count, e.g. --publishers 4");
                    std::process::exit(1);
                }
            }
        } else if let Some(n) = arg.strip_prefix("--match-lanes=") {
            match_lanes = Some(n.to_owned());
        } else if arg == "--match-lanes" {
            match args.next() {
                Some(n) => match_lanes = Some(n),
                None => {
                    eprintln!("--match-lanes needs a lane count, e.g. --match-lanes 4");
                    std::process::exit(1);
                }
            }
        } else if let Some(n) = arg.strip_prefix("--lane-cost-target=") {
            cost_target = Some(n.to_owned());
        } else if arg == "--lane-cost-target" {
            match args.next() {
                Some(n) => cost_target = Some(n),
                None => {
                    eprintln!("--lane-cost-target needs a scan cost, e.g. --lane-cost-target 4096");
                    std::process::exit(1);
                }
            }
        } else if let Some(n) = arg.strip_prefix("--churn=") {
            churn_spec = Some(n.to_owned());
        } else if arg == "--churn" {
            match args.next() {
                Some(n) => churn_spec = Some(n),
                None => {
                    eprintln!("--churn needs a spec: <rate>@<pool>, e.g. --churn 0.02@500");
                    std::process::exit(1);
                }
            }
        } else if let Some(n) = arg.strip_prefix("--join=") {
            join_spec = Some(n.to_owned());
        } else if arg == "--join" {
            match args.next() {
                Some(n) => join_spec = Some(n),
                None => {
                    eprintln!("--join needs a document count, e.g. --join 100");
                    std::process::exit(1);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let publishers = match publishers.as_deref() {
        Some(_) if !live => {
            eprintln!("--publishers requires live mode (the simulator is single-threaded)");
            std::process::exit(1);
        }
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--publishers needs a positive integer, got `{n}`");
                std::process::exit(1);
            }
        },
        None => 1,
    };
    let match_lanes = match match_lanes.as_deref() {
        Some(_) if !live => {
            eprintln!("--match-lanes requires live mode (the simulator matches inline)");
            std::process::exit(1);
        }
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--match-lanes needs a positive integer, got `{n}`");
                std::process::exit(1);
            }
        },
        None => 1,
    };
    let lane_cost_target = match cost_target.as_deref() {
        Some(_) if !live => {
            eprintln!("--lane-cost-target requires live mode (the simulator matches inline)");
            std::process::exit(1);
        }
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--lane-cost-target needs a positive integer, got `{n}`");
                std::process::exit(1);
            }
        },
        None => move_runtime::DEFAULT_LANE_COST_TARGET,
    };
    let join_at = match join_spec.as_deref() {
        Some(_) if !live => {
            eprintln!("--join requires live mode (the simulator has no rebalancer)");
            std::process::exit(1);
        }
        Some(n) => match n.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--join needs a document count, got `{n}`");
                std::process::exit(1);
            }
        },
        None => None,
    };
    let churn = match churn_spec.as_deref() {
        Some(_) if !live => {
            eprintln!("--churn requires live mode (churn rides the engine's control plane)");
            std::process::exit(1);
        }
        Some(spec) => match parse_churn_plan(spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("cannot start: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    let mut positional = positional.into_iter();
    let nodes = positional.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let racks = positional.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let plan = match &fault_spec {
        Some(spec) if !live => {
            eprintln!("--fault-plan {spec} requires live mode (failures are plan-driven there)");
            std::process::exit(1);
        }
        Some(spec) => match parse_fault_plan(spec, nodes) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("cannot start: {e}");
                std::process::exit(1);
            }
        },
        None => FaultPlan::none(),
    };
    let built = if live {
        LiveSession::with_churn(
            nodes,
            racks,
            plan,
            publishers,
            match_lanes,
            lane_cost_target,
            join_at,
            churn,
        )
        .map(|s| Shell::Live(Box::new(s)))
    } else {
        Session::new(nodes, racks).map(|s| Shell::Sim(Box::new(s)))
    };
    let mut session = match built {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start: {e}");
            std::process::exit(1);
        }
    };
    let mode = if live {
        "live node workers"
    } else {
        "simulated nodes"
    };
    println!("move-cli: {nodes} {mode} over {racks} racks (try `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("move> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line) {
            Ok(cmd) => println!("{}", session.run(cmd)),
            Err(msg) => println!("{msg}"),
        }
        if session.finished() {
            break;
        }
    }
}
