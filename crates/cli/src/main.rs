//! The `move-cli` interactive shell. See `move_cli` (the library) for the
//! command language.
//!
//! Usage: `move-cli [live] [--fault-plan <spec>] [nodes] [racks]` — with
//! `live`, commands run on the concurrent `move-runtime` engine instead of
//! the simulator; `--fault-plan kill=<fraction>@<doc>[,seed=<seed>]`
//! crashes that share of the workers mid-session so supervised restarts
//! can be watched live.

use move_cli::{parse_fault_plan, Command, LiveSession, Session};
use move_runtime::FaultPlan;
use std::io::{BufRead, Write};

enum Shell {
    Sim(Box<Session>),
    Live(LiveSession),
}

impl Shell {
    fn run(&mut self, cmd: Command) -> String {
        match self {
            Self::Sim(s) => s.run(cmd),
            Self::Live(s) => s.run(cmd),
        }
    }

    fn finished(&self) -> bool {
        match self {
            Self::Sim(s) => s.finished,
            Self::Live(s) => s.finished,
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let live = args.peek().is_some_and(|a| a == "live");
    if live {
        args.next();
    }
    let mut fault_spec: Option<String> = None;
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        if let Some(spec) = arg.strip_prefix("--fault-plan=") {
            fault_spec = Some(spec.to_owned());
        } else if arg == "--fault-plan" {
            match args.next() {
                Some(spec) => fault_spec = Some(spec),
                None => {
                    eprintln!("--fault-plan needs a spec: kill=<fraction>@<doc>[,seed=<seed>]");
                    std::process::exit(1);
                }
            }
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let nodes = positional.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let racks = positional.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let plan = match &fault_spec {
        Some(spec) if !live => {
            eprintln!("--fault-plan {spec} requires live mode (failures are plan-driven there)");
            std::process::exit(1);
        }
        Some(spec) => match parse_fault_plan(spec, nodes) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("cannot start: {e}");
                std::process::exit(1);
            }
        },
        None => FaultPlan::none(),
    };
    let built = if live {
        LiveSession::with_fault_plan(nodes, racks, plan).map(Shell::Live)
    } else {
        Session::new(nodes, racks).map(|s| Shell::Sim(Box::new(s)))
    };
    let mut session = match built {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start: {e}");
            std::process::exit(1);
        }
    };
    let mode = if live {
        "live node workers"
    } else {
        "simulated nodes"
    };
    println!("move-cli: {nodes} {mode} over {racks} racks (try `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("move> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line) {
            Ok(cmd) => println!("{}", session.run(cmd)),
            Err(msg) => println!("{msg}"),
        }
        if session.finished() {
            break;
        }
    }
}
