//! The `move-cli` command language and interpreter: an interactive shell
//! for driving a simulated MOVE cluster — registering filters as plain
//! text, publishing documents, triggering allocation, injecting failures
//! and inspecting cluster state.
//!
//! The parsing and execution live in the library so they are unit-testable;
//! `src/main.rs` is a thin stdin loop. `move-cli live` swaps the simulator
//! for the concurrent `move-runtime` engine — see [`LiveSession`].
//!
//! # Examples
//!
//! ```
//! use move_cli::{Command, Session};
//!
//! let mut session = Session::new(6, 2).unwrap();
//! session.run(Command::parse("register 1 rust async runtime").unwrap());
//! let out = session.run(Command::parse("publish the rust async book").unwrap());
//! assert!(out.contains("f1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod live;

pub use live::{parse_churn_plan, parse_fault_plan, LiveSession};

use move_cluster::FailureMode;
use move_core::{Dissemination, MoveScheme, SystemConfig};
use move_text::TextPipeline;
use move_types::{FilterId, NodeId, TermDictionary};
use rand_like::TinyRng;

/// One shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `register <id> <keywords…>` — register a filter.
    Register(u64, String),
    /// `unregister <id>` — remove a filter.
    Unregister(u64),
    /// `publish <text…>` — publish a document, printing the deliveries.
    Publish(String),
    /// `allocate` — run the statistics master.
    Allocate,
    /// `fail <node|fraction>` — crash a node id or a fraction of the
    /// cluster (rack-correlated when fractional).
    Fail(String),
    /// `recover <node>` — restart a node.
    Recover(u32),
    /// `stats` — per-node storage/cost summary.
    Stats,
    /// `help` — list commands.
    Help,
    /// `quit` — leave the shell.
    Quit,
}

impl Command {
    /// Parses one input line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands or malformed
    /// arguments.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let head = words.next().ok_or("empty command")?;
        let rest = |w: std::str::SplitWhitespace<'_>| w.collect::<Vec<_>>().join(" ");
        match head {
            "register" | "reg" => {
                let id: u64 = words
                    .next()
                    .ok_or("usage: register <id> <keywords…>")?
                    .parse()
                    .map_err(|e| format!("bad filter id: {e}"))?;
                let text = rest(words);
                if text.is_empty() {
                    return Err("usage: register <id> <keywords…>".into());
                }
                Ok(Self::Register(id, text))
            }
            "unregister" | "unreg" => {
                let id: u64 = words
                    .next()
                    .ok_or("usage: unregister <id>")?
                    .parse()
                    .map_err(|e| format!("bad filter id: {e}"))?;
                Ok(Self::Unregister(id))
            }
            "publish" | "pub" => {
                let text = rest(words);
                if text.is_empty() {
                    return Err("usage: publish <text…>".into());
                }
                Ok(Self::Publish(text))
            }
            "allocate" | "alloc" => Ok(Self::Allocate),
            "fail" => Ok(Self::Fail(
                words
                    .next()
                    .ok_or("usage: fail <node|fraction>")?
                    .to_owned(),
            )),
            "recover" => {
                let n: u32 = words
                    .next()
                    .ok_or("usage: recover <node>")?
                    .parse()
                    .map_err(|e| format!("bad node id: {e}"))?;
                Ok(Self::Recover(n))
            }
            "stats" => Ok(Self::Stats),
            "help" | "?" => Ok(Self::Help),
            "quit" | "exit" => Ok(Self::Quit),
            other => Err(format!("unknown command {other:?} (try `help`)")),
        }
    }
}

/// An interactive session holding a simulated cluster.
#[derive(Debug)]
pub struct Session {
    scheme: MoveScheme,
    pipeline: TextPipeline,
    dict: TermDictionary,
    next_doc: u64,
    clock: f64,
    rng: TinyRng,
    /// Set once [`Command::Quit`] has run.
    pub finished: bool,
}

impl Session {
    /// Creates a session over a fresh simulated cluster.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn new(nodes: usize, racks: usize) -> Result<Self, String> {
        let config = SystemConfig {
            nodes,
            racks,
            capacity_per_node: 100_000,
            expected_terms: 100_000,
            ..SystemConfig::default()
        };
        let scheme = MoveScheme::new(config).map_err(|e| e.to_string())?;
        Ok(Self {
            scheme,
            pipeline: TextPipeline::default(),
            dict: TermDictionary::new(),
            next_doc: 0,
            clock: 0.0,
            rng: TinyRng::new(0x0C11),
            finished: false,
        })
    }

    /// Executes one command, returning the text to print.
    pub fn run(&mut self, cmd: Command) -> String {
        match cmd {
            Command::Register(id, text) => {
                let filter = self.pipeline.filter(id, &text, &mut self.dict);
                if filter.is_empty() {
                    return "filter has no terms after preprocessing; not registered".into();
                }
                let terms = filter.len();
                match self.scheme.register(&filter) {
                    Ok(()) => format!("registered f{id} ({terms} terms)"),
                    Err(e) => format!("error: {e}"),
                }
            }
            Command::Unregister(id) => match self.scheme.unregister(FilterId(id)) {
                Ok(true) => format!("unregistered f{id}"),
                Ok(false) => format!("f{id} was not registered"),
                Err(e) => format!("error: {e}"),
            },
            Command::Publish(text) => {
                let doc = self.pipeline.document(self.next_doc, &text, &mut self.dict);
                self.next_doc += 1;
                self.clock += 0.001;
                // Feed the live statistics too (the scheme does this on
                // publish), then report deliveries.
                match self.scheme.publish(self.clock, &doc) {
                    Ok(out) => {
                        if out.matched.is_empty() {
                            "no matching filters".into()
                        } else {
                            let ids: Vec<String> =
                                out.matched.iter().map(ToString::to_string).collect();
                            format!("delivered to {}", ids.join(", "))
                        }
                    }
                    Err(e) => format!("error: {e}"),
                }
            }
            Command::Allocate => match self.scheme.allocate() {
                Ok(()) => {
                    let (tables, entries) = self.scheme.forwarding_tables();
                    format!("allocated: {tables} forwarding tables, {entries} grid slots")
                }
                Err(e) => format!("error: {e}"),
            },
            Command::Fail(arg) => {
                if let Ok(frac) = arg.parse::<f64>() {
                    if (0.0..1.0).contains(&frac) && arg.contains('.') {
                        let dead = self.scheme.cluster_mut().fail_fraction(
                            frac,
                            FailureMode::RackCorrelated,
                            &mut self.rng,
                        );
                        let names: Vec<String> = dead.iter().map(ToString::to_string).collect();
                        return format!(
                            "crashed {} node(s): {} — availability {:.3}",
                            dead.len(),
                            names.join(", "),
                            self.scheme.filter_availability()
                        );
                    }
                }
                match arg.parse::<u32>() {
                    Ok(n) if (n as usize) < self.scheme.cluster().len() => {
                        self.scheme.cluster_mut().membership_mut().crash(NodeId(n));
                        format!(
                            "crashed n{n} — availability {:.3}",
                            self.scheme.filter_availability()
                        )
                    }
                    _ => format!("no such node or fraction: {arg}"),
                }
            }
            Command::Recover(n) => {
                if (n as usize) < self.scheme.cluster().len() {
                    self.scheme
                        .cluster_mut()
                        .membership_mut()
                        .recover(NodeId(n));
                    format!("recovered n{n}")
                } else {
                    format!("no such node: n{n}")
                }
            }
            Command::Stats => {
                let storage = self.scheme.storage_per_node();
                let mut out = format!(
                    "{} filters registered; availability {:.3}\n",
                    self.scheme.registered_filters(),
                    self.scheme.filter_availability()
                );
                for (i, (s, l)) in storage
                    .iter()
                    .zip(self.scheme.cluster().ledgers().all())
                    .enumerate()
                {
                    let alive = if self.scheme.cluster().is_alive(NodeId(i as u32)) {
                        "up  "
                    } else {
                        "DOWN"
                    };
                    out.push_str(&format!(
                        "  n{i:<3} {alive} {s:>8} copies  {:>8} docs  {:>10} postings\n",
                        l.docs_received, l.postings_scanned
                    ));
                }
                out.pop();
                out
            }
            Command::Help => "\
commands:
  register <id> <keywords…>   register a keyword filter
  unregister <id>             remove a filter
  publish <text…>             publish a document
  allocate                    run the statistics master (filter allocation)
  fail <node|0.fraction>      crash a node, or a rack-correlated fraction
  recover <node>              restart a node
  stats                       per-node storage and matching counters
  quit                        leave"
                .into(),
            Command::Quit => {
                self.finished = true;
                "bye".into()
            }
        }
    }
}

/// A tiny xorshift RNG so the CLI needs no extra dependency; implements
/// `rand::RngCore` via the workspace's `rand` through `move-core`'s public
/// API requirements.
mod rand_like {
    /// SplitMix-seeded xorshift64*.
    #[derive(Debug)]
    pub struct TinyRng(u64);

    impl TinyRng {
        pub fn new(seed: u64) -> Self {
            Self(seed | 1)
        }
    }

    impl rand::RngCore for TinyRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_every_command() {
        assert_eq!(
            Command::parse("register 7 breaking news").unwrap(),
            Command::Register(7, "breaking news".into())
        );
        assert_eq!(Command::parse("unreg 7").unwrap(), Command::Unregister(7));
        assert_eq!(
            Command::parse("publish hello world").unwrap(),
            Command::Publish("hello world".into())
        );
        assert_eq!(Command::parse("allocate").unwrap(), Command::Allocate);
        assert_eq!(Command::parse("fail 3").unwrap(), Command::Fail("3".into()));
        assert_eq!(Command::parse("recover 3").unwrap(), Command::Recover(3));
        assert_eq!(Command::parse("stats").unwrap(), Command::Stats);
        assert_eq!(Command::parse("help").unwrap(), Command::Help);
        assert_eq!(Command::parse("quit").unwrap(), Command::Quit);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Command::parse("").is_err());
        assert!(Command::parse("register").is_err());
        assert!(Command::parse("register x news").is_err());
        assert!(Command::parse("register 1").is_err());
        assert!(Command::parse("publish").is_err());
        assert!(Command::parse("frobnicate").is_err());
    }

    #[test]
    fn session_round_trip() {
        let mut s = Session::new(6, 2).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        assert!(s
            .run(Command::parse("publish rust shipped a release").unwrap())
            .contains("f1"));
        assert!(s
            .run(Command::parse("publish nothing relevant here").unwrap())
            .contains("no matching"));
        assert!(s.run(Command::Allocate).contains("forwarding tables"));
        assert!(s
            .run(Command::parse("unregister 1").unwrap())
            .contains("unregistered"));
        assert!(s
            .run(Command::parse("publish rust again").unwrap())
            .contains("no matching"));
    }

    #[test]
    fn session_failure_commands() {
        let mut s = Session::new(6, 2).unwrap();
        s.run(Command::parse("register 1 alpha").unwrap());
        assert!(s
            .run(Command::parse("fail 0").unwrap())
            .contains("crashed n0"));
        assert!(s
            .run(Command::parse("recover 0").unwrap())
            .contains("recovered n0"));
        assert!(s
            .run(Command::parse("fail 99").unwrap())
            .contains("no such node"));
        let out = s.run(Command::parse("fail 0.3").unwrap());
        assert!(out.contains("availability"), "{out}");
        assert!(s.run(Command::Stats).contains("filters registered"));
    }

    #[test]
    fn quit_finishes_session() {
        let mut s = Session::new(3, 1).unwrap();
        assert!(!s.finished);
        s.run(Command::Quit);
        assert!(s.finished);
    }
}
