//! `live` mode: the same command language, executed by the concurrent
//! `move-runtime` engine instead of the virtual-time simulator. Matching
//! runs on one OS thread per node, and `stats` shows real wall-clock
//! latency percentiles and queue depths. A seeded [`FaultPlan`] (the
//! `--fault-plan` flag) crashes workers mid-session so supervised
//! restarts and replica failover can be watched interactively.

use crate::Command;
use move_core::{MoveScheme, SystemConfig};
use move_runtime::{Engine, FaultPlan, RuntimeConfig};
use move_text::TextPipeline;
use move_types::{Filter, TermDictionary, TermId};
use move_workload::{ChurnOp, ChurnSpec, ChurnWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthetic churn subscribers live far above any interactively registered
/// filter id, so `stats`/delivery output can tell them apart.
const CHURN_ID_BASE: u64 = 1 << 40;
/// Synthetic churn predicates use term ids far above anything the text
/// pipeline interns, so interactive documents never match the background
/// population — churn is control-plane load, not delivery noise.
const CHURN_TERM_BASE: u32 = 1 << 20;

/// Background registration churn riding an interactive live session: a
/// synthetic subscriber population that turns over through the engine's
/// control plane while the user publishes.
#[derive(Debug)]
struct ChurnState {
    workload: ChurnWorkload,
    rng: StdRng,
}

impl ChurnState {
    /// Remaps a synthetic filter into the reserved id/term ranges.
    fn remap(filter: &Filter) -> Filter {
        Filter::new(
            CHURN_ID_BASE + filter.id().0,
            filter.terms().iter().map(|t| TermId(CHURN_TERM_BASE + t.0)),
        )
    }

    /// Applies one churn tick through the engine's control plane.
    fn tick(&mut self, engine: &Engine) {
        for op in self.workload.tick(&mut self.rng) {
            match op {
                ChurnOp::Register(f) => engine.register(Self::remap(&f)),
                ChurnOp::Unregister(id) => {
                    engine.unregister(move_types::FilterId(CHURN_ID_BASE + id.0))
                }
            }
        }
    }
}

/// Parses a `--fault-plan` spec: `kill=<fraction>@<doc>[,seed=<seed>]`,
/// e.g. `kill=0.3@10,seed=42` — crash 30% of the `nodes` workers
/// (seed-chosen, staggered) starting at the 10th published document.
///
/// # Errors
///
/// Returns a usage message when the spec does not parse.
pub fn parse_fault_plan(spec: &str, nodes: usize) -> Result<FaultPlan, String> {
    let usage = || format!("bad fault plan `{spec}`; expected kill=<fraction>@<doc>[,seed=<seed>]");
    let mut kill: Option<(f64, u64)> = None;
    let mut seed = 0x9C0u64;
    for part in spec.split(',') {
        let (key, value) = part.split_once('=').ok_or_else(usage)?;
        match key {
            "kill" => {
                let (frac, at_doc) = value.split_once('@').ok_or_else(usage)?;
                let frac: f64 = frac.parse().map_err(|_| usage())?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err(format!("kill fraction {frac} must be within 0..=1"));
                }
                kill = Some((frac, at_doc.parse().map_err(|_| usage())?));
            }
            "seed" => seed = value.parse().map_err(|_| usage())?,
            _ => return Err(usage()),
        }
    }
    let (fraction, at_doc) = kill.ok_or_else(usage)?;
    Ok(FaultPlan::kill_fraction(nodes, fraction, at_doc, seed))
}

/// Parses a `--churn` spec: `<rate>@<pool>`, e.g. `0.02@500` — boot a
/// synthetic population of 500 subscribers and turn over 2% of it through
/// the engine's control plane per published document.
///
/// # Errors
///
/// Returns a usage message when the spec does not parse or the rate is
/// outside `(0, 1]` / the pool is zero.
pub fn parse_churn_plan(spec: &str) -> Result<(f64, u64), String> {
    let usage = || format!("bad churn spec `{spec}`; expected <rate>@<pool>, e.g. 0.02@500");
    let (rate, pool) = spec.split_once('@').ok_or_else(usage)?;
    let rate: f64 = rate.parse().map_err(|_| usage())?;
    let pool: u64 = pool.parse().map_err(|_| usage())?;
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(format!("churn rate {rate} must be within (0, 1]"));
    }
    if pool == 0 {
        return Err("churn pool must be positive".into());
    }
    Ok((rate, pool))
}

/// An interactive session over a live [`Engine`].
///
/// Supports the structural subset of the shell: registration, publishing
/// and stats. Manual allocation stays simulator-only (the engine's control
/// plane refreshes allocations by itself); failures are injected by a
/// seeded [`FaultPlan`] rather than `fail` commands.
#[derive(Debug)]
pub struct LiveSession {
    engine: Option<Engine>,
    pipeline: TextPipeline,
    dict: TermDictionary,
    next_doc: u64,
    /// `--join <at-doc>`: once this many documents have been published, a
    /// new node joins the running cluster (live partition rebalancing) and
    /// the trigger clears.
    join_at: Option<u64>,
    /// `--churn <rate>@<pool>`: a synthetic subscriber population churning
    /// through the control plane, one tick per published document.
    churn: Option<ChurnState>,
    /// Set once [`Command::Quit`] has run.
    pub finished: bool,
}

impl LiveSession {
    /// Boots a MOVE scheme on a live engine with one worker per node.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn new(nodes: usize, racks: usize) -> Result<Self, String> {
        Self::with_fault_plan(nodes, racks, FaultPlan::none())
    }

    /// Boots the live engine with a seeded fault plan: workers crash on
    /// schedule and the supervisor restarts them from their registration
    /// journals mid-session.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn with_fault_plan(nodes: usize, racks: usize, plan: FaultPlan) -> Result<Self, String> {
        Self::with_options(nodes, racks, plan, 1)
    }

    /// Boots the live engine with a seeded fault plan *and* a router pool
    /// of `publishers` ingest threads (the `--publishers` flag): documents
    /// are routed concurrently against the engine's immutable routing
    /// snapshots, and the session report breaks routed/shed counts out per
    /// ingest thread.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn with_options(
        nodes: usize,
        racks: usize,
        plan: FaultPlan,
        publishers: usize,
    ) -> Result<Self, String> {
        Self::with_join(nodes, racks, plan, publishers, 1, None)
    }

    /// Boots the live engine with every option: the `--join` trigger
    /// (after `join_at` published documents, a new node joins the running
    /// cluster through the live rebalancer — layout staged, moved
    /// partitions streamed to the new worker, commit — and the session
    /// prints the migration outcome) and the `--match-lanes` knob (each
    /// worker fans its batches over a work-stealing pool of `match_lanes`
    /// match lanes; 1 keeps the serial inline matcher).
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn with_join(
        nodes: usize,
        racks: usize,
        plan: FaultPlan,
        publishers: usize,
        match_lanes: usize,
        join_at: Option<u64>,
    ) -> Result<Self, String> {
        Self::with_churn(
            nodes,
            racks,
            plan,
            publishers,
            match_lanes,
            move_runtime::DEFAULT_LANE_COST_TARGET,
            join_at,
            None,
        )
    }

    /// Boots the live engine with every option plus the `--churn
    /// <rate>@<pool>` background load: a synthetic population of `pool`
    /// subscribers is bulk-registered through the control plane at boot,
    /// and each published document advances one churn tick turning over
    /// `rate` of the population (registrations, displacements and
    /// unregistrations riding the engine's aggregation layer; the session
    /// report shows the control-plane counters at quit). Synthetic
    /// subscribers use reserved id and term ranges, so they never match
    /// interactive documents. `lane_cost_target` is the `--lane-cost-target`
    /// knob: the posting-scan cost (ids scanned per unit of work) the lane
    /// planner packs into each stealable unit — smaller targets mean finer
    /// units and more steal opportunities, larger targets less scheduling
    /// overhead.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected or
    /// the churn population cannot be generated.
    #[allow(clippy::too_many_arguments)]
    pub fn with_churn(
        nodes: usize,
        racks: usize,
        plan: FaultPlan,
        publishers: usize,
        match_lanes: usize,
        lane_cost_target: usize,
        join_at: Option<u64>,
        churn: Option<(f64, u64)>,
    ) -> Result<Self, String> {
        let config = SystemConfig {
            nodes,
            racks,
            capacity_per_node: 100_000,
            expected_terms: 100_000,
            ..SystemConfig::default()
        };
        let runtime = RuntimeConfig {
            publishers: publishers.max(1),
            match_lanes: match_lanes.max(1),
            lane_cost_target: lane_cost_target.max(1),
            ..RuntimeConfig::default()
        };
        let scheme = MoveScheme::new(config).map_err(|e| e.to_string())?;
        let engine = Engine::start_with_faults(Box::new(scheme), runtime, plan)
            .map_err(|e| e.to_string())?;
        let churn = match churn {
            None => None,
            Some((rate, pool)) => {
                let spec = ChurnSpec {
                    churn_fraction: rate,
                    ..ChurnSpec::scaled(pool)
                };
                let mut rng = StdRng::seed_from_u64(0xC0_D0);
                let workload = ChurnWorkload::new(&spec, &mut rng).map_err(|e| e.to_string())?;
                for f in workload.initial_filters() {
                    engine.register(ChurnState::remap(&f));
                }
                Some(ChurnState { workload, rng })
            }
        };
        Ok(Self {
            engine: Some(engine),
            pipeline: TextPipeline::default(),
            dict: TermDictionary::new(),
            next_doc: 0,
            join_at,
            churn,
            finished: false,
        })
    }

    /// Executes one command, returning the text to print.
    pub fn run(&mut self, cmd: Command) -> String {
        let Some(engine) = &self.engine else {
            return "engine already shut down".into();
        };
        match cmd {
            Command::Register(id, text) => {
                let filter = self.pipeline.filter(id, &text, &mut self.dict);
                if filter.is_empty() {
                    return "filter has no terms after preprocessing; not registered".into();
                }
                let terms = filter.len();
                engine.register(filter);
                format!("registered f{id} ({terms} terms)")
            }
            Command::Publish(text) => {
                let doc = self.pipeline.document(self.next_doc, &text, &mut self.dict);
                self.next_doc += 1;
                // Background churn rides the publish cadence: one tick of
                // population turnover through the control plane per
                // document, applied before the publish so the delivery
                // reflects the post-tick population.
                if let Some(churn) = self.churn.as_mut() {
                    churn.tick(engine);
                }
                let matched = engine.publish_sync(doc);
                let mut out = if matched.is_empty() {
                    String::from("no matching filters")
                } else {
                    let ids: Vec<String> = matched.iter().map(ToString::to_string).collect();
                    format!("delivered to {}", ids.join(", "))
                };
                // The --join trigger: grow the cluster once the stream has
                // passed the threshold. The shell publishes synchronously,
                // so the handover window is empty and the join commits
                // immediately — the interesting windowed path is driven by
                // `bench_rebalance`, not the interactive shell.
                if self.join_at.is_some_and(|at| self.next_doc >= at) {
                    self.join_at = None;
                    match engine.join_node(0) {
                        Ok(o) => out.push_str(&format!(
                            "\n{} joined the cluster: layout v{}, {} partitions moved",
                            o.node, o.layout_version, o.partitions_moved
                        )),
                        Err(e) => out.push_str(&format!("\nnode join failed: {e}")),
                    }
                }
                out
            }
            Command::Stats => {
                let nodes = engine.stats();
                let mut out = format!("{} live node workers\n", nodes.len());
                for m in &nodes {
                    out.push_str(&format!(
                        "  {:<4} {:>7} msgs  {:>7} tasks  {:>10} postings  hwm {:>3}  p99 {:.1}us\n",
                        m.node.to_string(),
                        m.messages_processed,
                        m.doc_tasks,
                        m.postings_scanned,
                        m.queue_depth_hwm,
                        m.latency.p99 as f64 / 1e3,
                    ));
                }
                out.pop();
                out
            }
            Command::Unregister(_) | Command::Allocate | Command::Fail(_) | Command::Recover(_) => {
                "not available in live mode (allocation is automatic; inject failures \
                 with --fault-plan kill=<fraction>@<doc>)"
                    .into()
            }
            Command::Help => "\
live-mode commands:
  register <id> <keywords…>   register a keyword filter
  publish <text…>             publish a document (waits for deliveries)
  stats                       per-worker counters and latency percentiles
  quit                        drain, shut the engine down, print the report"
                .into(),
            Command::Quit => {
                self.finished = true;
                let engine = self.engine.take().expect("engine running");
                match engine.shutdown() {
                    Ok(r) => {
                        let mut out = format!(
                            "engine drained: {} docs, {} tasks, p50 {:.1}us p99 {:.1}us; \
                             {} restarts, {} retries, {} failovers, {} joins, {} docs lost — bye",
                            r.docs_published,
                            r.tasks_dispatched,
                            r.latency.p50 as f64 / 1e3,
                            r.latency.p99 as f64 / 1e3,
                            r.restarts,
                            r.retries,
                            r.failovers,
                            r.joins,
                            r.lost_docs.len(),
                        );
                        for m in &r.ingest {
                            out.push_str(&format!(
                                "\n  ingest t{}: {} docs routed, {} tasks dispatched, {} shed",
                                m.thread, m.docs_routed, m.tasks_dispatched, m.tasks_shed,
                            ));
                        }
                        if r.registrations + r.unregistrations > 0 {
                            out.push_str(&format!(
                                "\n  control plane: {} registrations ({} canonical hits), \
                                 {} unregistrations, {} canonicals live, {} fan-out bytes",
                                r.registrations,
                                r.canonical_hits,
                                r.unregistrations,
                                r.canonical_filters,
                                r.aggregation_bytes,
                            ));
                        }
                        out
                    }
                    Err(e) => format!("shutdown error: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_round_trip() {
        let mut s = LiveSession::new(6, 2).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        assert!(s
            .run(Command::parse("publish rust shipped a release").unwrap())
            .contains("f1"));
        assert!(s
            .run(Command::parse("publish nothing relevant here").unwrap())
            .contains("no matching"));
        let stats = s.run(Command::Stats);
        assert!(stats.contains("live node workers"), "{stats}");
        assert!(s
            .run(Command::parse("fail 3").unwrap())
            .contains("not available"));
        let bye = s.run(Command::Quit);
        assert!(bye.contains("engine drained"), "{bye}");
        assert!(s.finished);
    }

    #[test]
    fn pooled_session_reports_per_ingest_counters() {
        let mut s = LiveSession::with_options(6, 2, FaultPlan::none(), 3).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        for _ in 0..6 {
            let _ = s.run(Command::parse("publish rust shipped a release").unwrap());
        }
        let bye = s.run(Command::Quit);
        assert!(bye.contains("engine drained: 6 docs"), "{bye}");
        for thread in ["ingest t0:", "ingest t1:", "ingest t2:"] {
            assert!(bye.contains(thread), "{bye}");
        }
        assert!(!bye.contains("ingest t3:"), "{bye}");
    }

    #[test]
    fn join_trigger_grows_the_cluster_mid_session() {
        let mut s = LiveSession::with_join(6, 2, FaultPlan::none(), 1, 1, Some(2)).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        let first = s.run(Command::parse("publish rust shipped a release").unwrap());
        assert!(
            !first.contains("joined"),
            "{first}: joined before the trigger"
        );
        let second = s.run(Command::parse("publish rust again").unwrap());
        assert!(
            second.contains("n6 joined the cluster: layout v"),
            "{second}"
        );
        // The trigger fires once; matching still works on the grown cluster.
        let third = s.run(Command::parse("publish rust once more").unwrap());
        assert!(third.contains("delivered to f1"), "{third}");
        assert!(!third.contains("joined"), "{third}");
        let bye = s.run(Command::Quit);
        assert!(bye.contains("1 joins"), "{bye}");
    }

    #[test]
    fn fault_plan_specs_parse_or_explain() {
        let plan = parse_fault_plan("kill=0.3@10,seed=42", 20).unwrap();
        assert_eq!(plan.crashed_nodes().len(), 6, "30% of 20 workers");
        let plan = parse_fault_plan("kill=0.5@0", 6).unwrap();
        assert_eq!(plan.crashed_nodes().len(), 3, "default seed accepted");
        for bad in [
            "",
            "kill=0.3",
            "kill=ten@4",
            "kill=1.5@4",
            "pause=0.3@4",
            "seed=7",
        ] {
            let err = parse_fault_plan(bad, 6).unwrap_err();
            assert!(
                err.contains("fault plan") || err.contains("within 0..=1"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn churn_plan_specs_parse_or_explain() {
        assert_eq!(parse_churn_plan("0.02@500").unwrap(), (0.02, 500));
        assert_eq!(parse_churn_plan("1@8").unwrap(), (1.0, 8));
        for bad in [
            "",
            "0.02",
            "fast@500",
            "0.02@many",
            "0@500",
            "1.5@500",
            "0.02@0",
        ] {
            let err = parse_churn_plan(bad).unwrap_err();
            assert!(err.contains("churn"), "{bad}: {err}");
        }
    }

    #[test]
    fn churned_session_stays_exact_and_reports_control_counters() {
        let mut s = LiveSession::with_churn(
            6,
            2,
            FaultPlan::none(),
            1,
            1,
            move_runtime::DEFAULT_LANE_COST_TARGET,
            None,
            Some((0.1, 60)),
        )
        .unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        // Interactive deliveries must be untouched by the background
        // population: churn subscribers live in reserved id/term ranges.
        for _ in 0..5 {
            let out = s.run(Command::parse("publish rust shipped a release").unwrap());
            assert_eq!(out, "delivered to f1", "{out}");
        }
        let out = s.run(Command::parse("publish nothing relevant here").unwrap());
        assert!(out.contains("no matching"), "{out}");
        let bye = s.run(Command::Quit);
        assert!(bye.contains("engine drained"), "{bye}");
        assert!(bye.contains("control plane:"), "{bye}");
        assert!(bye.contains("registrations"), "{bye}");
        assert!(bye.contains("canonicals live"), "{bye}");
        assert!(bye.contains("fan-out bytes"), "{bye}");
    }

    #[test]
    fn faulted_session_restarts_workers_and_reports_it() {
        let plan = parse_fault_plan("kill=0.34@1,seed=7", 6).unwrap();
        let victims = plan.crashed_nodes().len();
        assert!(victims >= 2);
        let mut s = LiveSession::with_fault_plan(6, 2, plan).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        // Enough publishes to trip every scheduled crash and let the
        // supervisor restart the victims from their journals.
        for _ in 0..8 {
            let _ = s.run(Command::parse("publish rust shipped a release").unwrap());
        }
        let bye = s.run(Command::Quit);
        assert!(bye.contains("engine drained"), "{bye}");
        for expect in ["restarts", "failovers", "docs lost"] {
            assert!(bye.contains(expect), "{bye}");
        }
    }
}
