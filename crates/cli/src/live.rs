//! `live` mode: the same command language, executed by the concurrent
//! `move-runtime` engine instead of the virtual-time simulator. Matching
//! runs on one OS thread per node, and `stats` shows real wall-clock
//! latency percentiles and queue depths.

use crate::Command;
use move_core::{MoveScheme, SystemConfig};
use move_runtime::{Engine, RuntimeConfig};
use move_text::TextPipeline;
use move_types::TermDictionary;

/// An interactive session over a live [`Engine`].
///
/// Supports the structural subset of the shell: registration, publishing
/// and stats. Failure injection and manual allocation stay simulator-only
/// (the engine's control plane refreshes allocations by itself).
#[derive(Debug)]
pub struct LiveSession {
    engine: Option<Engine>,
    pipeline: TextPipeline,
    dict: TermDictionary,
    next_doc: u64,
    /// Set once [`Command::Quit`] has run.
    pub finished: bool,
}

impl LiveSession {
    /// Boots a MOVE scheme on a live engine with one worker per node.
    ///
    /// # Errors
    ///
    /// Returns a message when the cluster configuration is rejected.
    pub fn new(nodes: usize, racks: usize) -> Result<Self, String> {
        let config = SystemConfig {
            nodes,
            racks,
            capacity_per_node: 100_000,
            expected_terms: 100_000,
            ..SystemConfig::default()
        };
        let scheme = MoveScheme::new(config).map_err(|e| e.to_string())?;
        let engine =
            Engine::start(Box::new(scheme), RuntimeConfig::default()).map_err(|e| e.to_string())?;
        Ok(Self {
            engine: Some(engine),
            pipeline: TextPipeline::default(),
            dict: TermDictionary::new(),
            next_doc: 0,
            finished: false,
        })
    }

    /// Executes one command, returning the text to print.
    pub fn run(&mut self, cmd: Command) -> String {
        let Some(engine) = &self.engine else {
            return "engine already shut down".into();
        };
        match cmd {
            Command::Register(id, text) => {
                let filter = self.pipeline.filter(id, &text, &mut self.dict);
                if filter.is_empty() {
                    return "filter has no terms after preprocessing; not registered".into();
                }
                let terms = filter.len();
                engine.register(filter);
                format!("registered f{id} ({terms} terms)")
            }
            Command::Publish(text) => {
                let doc = self.pipeline.document(self.next_doc, &text, &mut self.dict);
                self.next_doc += 1;
                let matched = engine.publish_sync(doc);
                if matched.is_empty() {
                    "no matching filters".into()
                } else {
                    let ids: Vec<String> = matched.iter().map(ToString::to_string).collect();
                    format!("delivered to {}", ids.join(", "))
                }
            }
            Command::Stats => {
                let nodes = engine.stats();
                let mut out = format!("{} live node workers\n", nodes.len());
                for m in &nodes {
                    out.push_str(&format!(
                        "  {:<4} {:>7} msgs  {:>7} tasks  {:>10} postings  hwm {:>3}  p99 {:.1}us\n",
                        m.node.to_string(),
                        m.messages_processed,
                        m.doc_tasks,
                        m.postings_scanned,
                        m.queue_depth_hwm,
                        m.latency.p99 as f64 / 1e3,
                    ));
                }
                out.pop();
                out
            }
            Command::Unregister(_) | Command::Allocate | Command::Fail(_) | Command::Recover(_) => {
                "not available in live mode (allocation is automatic; failures are simulator-only)"
                    .into()
            }
            Command::Help => "\
live-mode commands:
  register <id> <keywords…>   register a keyword filter
  publish <text…>             publish a document (waits for deliveries)
  stats                       per-worker counters and latency percentiles
  quit                        drain, shut the engine down, print the report"
                .into(),
            Command::Quit => {
                self.finished = true;
                let engine = self.engine.take().expect("engine running");
                match engine.shutdown() {
                    Ok(r) => format!(
                        "engine drained: {} docs, {} tasks, p50 {:.1}us p99 {:.1}us — bye",
                        r.docs_published,
                        r.tasks_dispatched,
                        r.latency.p50 as f64 / 1e3,
                        r.latency.p99 as f64 / 1e3,
                    ),
                    Err(e) => format!("shutdown error: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_round_trip() {
        let mut s = LiveSession::new(6, 2).unwrap();
        assert!(s
            .run(Command::parse("register 1 rust news").unwrap())
            .contains("registered f1"));
        assert!(s
            .run(Command::parse("publish rust shipped a release").unwrap())
            .contains("f1"));
        assert!(s
            .run(Command::parse("publish nothing relevant here").unwrap())
            .contains("no matching"));
        let stats = s.run(Command::Stats);
        assert!(stats.contains("live node workers"), "{stats}");
        assert!(s
            .run(Command::parse("fail 3").unwrap())
            .contains("not available"));
        let bye = s.run(Command::Quit);
        assert!(bye.contains("engine drained"), "{bye}");
        assert!(s.finished);
    }
}
