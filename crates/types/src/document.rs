//! Published content documents.

use crate::{DocId, TermDictionary, TermId};
use serde::{Deserialize, Serialize};

/// A published content item, represented — as in paper §III-A — by its set of
/// distinct terms. Term occurrence counts are retained as well so that the
/// vector-space-model extension (similarity-threshold matching) can compute
/// weights.
///
/// The distinct terms are stored sorted, so membership tests are
/// `O(log |d|)` and set intersections are linear merges.
///
/// # Examples
///
/// ```
/// use move_types::{Document, TermDictionary};
///
/// let mut dict = TermDictionary::new();
/// // "news" appears twice: one distinct term, count 2.
/// let doc = Document::from_words(1, ["news", "rust", "news"], &mut dict);
/// assert_eq!(doc.distinct_terms(), 2);
/// assert_eq!(doc.term_count(dict.id("news").unwrap()), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    id: DocId,
    /// Distinct terms, sorted ascending.
    terms: Vec<TermId>,
    /// Occurrence count of each distinct term, parallel to `terms`.
    counts: Vec<u32>,
    /// Total number of term occurrences (sum of `counts`).
    total_occurrences: u64,
}

impl Document {
    /// Builds a document from raw words, interning them in `dict`. Duplicate
    /// words are collapsed into occurrence counts.
    pub fn from_words<'a, I, D>(id: D, words: I, dict: &mut TermDictionary) -> Self
    where
        I: IntoIterator<Item = &'a str>,
        D: Into<DocId>,
    {
        Self::from_occurrences(id, words.into_iter().map(|w| dict.intern(w)))
    }

    /// Builds a document from a stream of (possibly repeated) term ids.
    pub fn from_occurrences<I, D>(id: D, occurrences: I) -> Self
    where
        I: IntoIterator<Item = TermId>,
        D: Into<DocId>,
    {
        let mut all: Vec<TermId> = occurrences.into_iter().collect();
        all.sort_unstable();
        let mut terms: Vec<TermId> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for t in &all {
            match (terms.last(), counts.last_mut()) {
                (Some(&last), Some(c)) if last == *t => *c += 1,
                _ => {
                    terms.push(*t);
                    counts.push(1);
                }
            }
        }
        let total_occurrences = all.len() as u64;
        Self {
            id: id.into(),
            terms,
            counts,
            total_occurrences,
        }
    }

    /// Builds a document from already-distinct term ids, each counted once.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the input contains no duplicates.
    pub fn from_distinct_terms<I, D>(id: D, terms: I) -> Self
    where
        I: IntoIterator<Item = TermId>,
        D: Into<DocId>,
    {
        let mut terms: Vec<TermId> = terms.into_iter().collect();
        terms.sort_unstable();
        debug_assert!(
            terms.windows(2).all(|w| w[0] != w[1]),
            "from_distinct_terms received duplicate terms"
        );
        let counts = vec![1; terms.len()];
        let total_occurrences = terms.len() as u64;
        Self {
            id: id.into(),
            terms,
            counts,
            total_occurrences,
        }
    }

    /// The document id.
    pub fn id(&self) -> DocId {
        self.id
    }

    /// The distinct terms, sorted ascending.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of distinct terms (`|d|` in the paper).
    pub fn distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total term occurrences including repetitions.
    pub fn total_occurrences(&self) -> u64 {
        self.total_occurrences
    }

    /// Whether the document contains `term`.
    pub fn contains(&self, term: TermId) -> bool {
        self.terms.binary_search(&term).is_ok()
    }

    /// Occurrence count of `term` in this document (0 if absent).
    pub fn term_count(&self, term: TermId) -> u32 {
        match self.terms.binary_search(&term) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Iterates over `(term, occurrence count)` pairs in term order.
    pub fn term_counts(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.terms.iter().copied().zip(self.counts.iter().copied())
    }

    /// Number of terms shared with the sorted term slice `other`.
    ///
    /// Linear merge over both sorted sequences.
    pub fn intersection_size(&self, other: &[TermId]) -> usize {
        debug_assert!(other.windows(2).all(|w| w[0] < w[1]));
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.terms.len() && j < other.len() {
            match self.terms[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: &[u32]) -> Document {
        Document::from_occurrences(0, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn deduplicates_and_counts() {
        let d = doc(&[5, 1, 5, 3, 5]);
        assert_eq!(d.terms(), &[TermId(1), TermId(3), TermId(5)]);
        assert_eq!(d.term_count(TermId(5)), 3);
        assert_eq!(d.term_count(TermId(1)), 1);
        assert_eq!(d.term_count(TermId(2)), 0);
        assert_eq!(d.total_occurrences(), 5);
        assert_eq!(d.distinct_terms(), 3);
    }

    #[test]
    fn contains_uses_sorted_terms() {
        let d = doc(&[10, 2, 7]);
        assert!(d.contains(TermId(7)));
        assert!(!d.contains(TermId(8)));
    }

    #[test]
    fn intersection_size_counts_common_terms() {
        let d = doc(&[1, 3, 5, 7]);
        assert_eq!(d.intersection_size(&[TermId(3), TermId(4), TermId(7)]), 2);
        assert_eq!(d.intersection_size(&[]), 0);
        assert_eq!(d.intersection_size(&[TermId(0), TermId(9)]), 0);
    }

    #[test]
    fn empty_document() {
        let d = doc(&[]);
        assert_eq!(d.distinct_terms(), 0);
        assert_eq!(d.total_occurrences(), 0);
        assert!(!d.contains(TermId(0)));
    }

    #[test]
    fn from_words_interns() {
        let mut dict = TermDictionary::new();
        let d = Document::from_words(9, ["b", "a", "b"], &mut dict);
        assert_eq!(d.id(), DocId(9));
        assert_eq!(d.distinct_terms(), 2);
        let b = dict.id("b").unwrap();
        assert_eq!(d.term_count(b), 2);
    }

    #[test]
    fn term_counts_iterates_in_order() {
        let d = doc(&[4, 4, 2]);
        let pairs: Vec<_> = d.term_counts().collect();
        assert_eq!(pairs, vec![(TermId(2), 1), (TermId(4), 2)]);
    }
}
