//! The shared error type.

use crate::{FilterId, NodeId, TermId};
use std::error::Error;
use std::fmt;

/// Errors surfaced by the MOVE workspace crates.
///
/// The variants cover the failure classes of the system: configuration that
/// cannot describe a runnable cluster, lookups that miss, operations
/// addressed to failed nodes, and capacity violations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MoveError {
    /// A configuration parameter was invalid (empty cluster, zero capacity,
    /// out-of-range ratio, …).
    InvalidConfig(
        /// Human-readable description of the offending parameter.
        String,
    ),
    /// A node id did not exist in the cluster membership.
    UnknownNode(NodeId),
    /// A filter id was not registered.
    UnknownFilter(FilterId),
    /// A term id was outside the interned vocabulary.
    UnknownTerm(TermId),
    /// An operation was routed to a node that has failed.
    NodeDown(NodeId),
    /// A node would exceed its storage capacity `C`.
    CapacityExceeded {
        /// The node that ran out of capacity.
        node: NodeId,
        /// The node's configured capacity in filters.
        capacity: u64,
        /// The attempted new occupancy.
        requested: u64,
    },
    /// A workload generator could not be calibrated to the requested target.
    Calibration(
        /// Description of the unreachable target statistic.
        String,
    ),
    /// The live execution engine failed outside the schemes' own logic: a
    /// worker or router thread could not be spawned, panicked, or was torn
    /// down twice. Carries a description of the failing runtime component.
    Runtime(
        /// Human-readable description of the runtime failure.
        String,
    ),
    /// An internal invariant that should be unreachable was observed — the
    /// typed replacement for `unreachable!()` in library code, so callers
    /// get an error they can log instead of a crashed worker.
    Internal(
        /// Description of the violated invariant.
        String,
    ),
}

impl fmt::Display for MoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::UnknownNode(n) => write!(f, "unknown node {n}"),
            Self::UnknownFilter(id) => write!(f, "unknown filter {id}"),
            Self::UnknownTerm(t) => write!(f, "unknown term {t}"),
            Self::NodeDown(n) => write!(f, "node {n} is down"),
            Self::CapacityExceeded {
                node,
                capacity,
                requested,
            } => write!(
                f,
                "node {node} capacity exceeded: requested {requested} of {capacity} filters"
            ),
            Self::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            Self::Runtime(msg) => write!(f, "runtime failure: {msg}"),
            Self::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for MoveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = MoveError::InvalidConfig("zero nodes".into());
        assert_eq!(e.to_string(), "invalid configuration: zero nodes");
        let e = MoveError::CapacityExceeded {
            node: NodeId(3),
            capacity: 10,
            requested: 12,
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("12 of 10"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_err<E: Error + Send + Sync + 'static>() {}
        assert_good_err::<MoveError>();
    }
}
