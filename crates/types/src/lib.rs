//! Core data types shared by every crate of the MOVE workspace.
//!
//! MOVE (Rao et al., ICDCS 2012) is a keyword-based content filtering and
//! dissemination system: users register short keyword [`Filter`]s, publishers
//! inject large [`Document`]s, and the system delivers each document to every
//! filter that shares at least one term with it.
//!
//! This crate defines the vocabulary of the whole system:
//!
//! * strongly-typed identifiers ([`TermId`], [`FilterId`], [`DocId`],
//!   [`NodeId`], [`RackId`]) so that e.g. a term can never be confused with a
//!   node,
//! * the [`TermDictionary`] interning terms to dense ids,
//! * [`Document`] and [`Filter`] term-set values,
//! * the [`MatchSemantics`] selector (boolean vs. similarity threshold), and
//! * the shared [`MoveError`] error type.
//!
//! # Examples
//!
//! ```
//! use move_types::{Document, Filter, TermDictionary};
//!
//! let mut dict = TermDictionary::new();
//! let doc = Document::from_words(0, ["rust", "distributed", "systems"], &mut dict);
//! let filter = Filter::from_words(0, ["rust"], &mut dict);
//! assert!(filter.matches(&doc));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod document;
mod error;
mod filter;
mod ids;
mod semantics;

pub use dictionary::TermDictionary;
pub use document::Document;
pub use error::MoveError;
pub use filter::Filter;
pub use ids::{CanonicalFilterId, DocId, FilterId, NodeId, RackId, TermId};
pub use semantics::MatchSemantics;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, MoveError>;
