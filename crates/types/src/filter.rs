//! Registered profile filters.

use crate::{Document, FilterId, TermDictionary, TermId};
use serde::{Deserialize, Serialize};

/// A user-registered profile filter: a small set of query terms expressing a
/// personal interest (paper §III-A). Real users prefer short queries — the
/// MSN trace averages 2.843 terms per filter — which is exactly what makes
/// the distributed-inverted-list registration affordable.
///
/// Terms are stored sorted and deduplicated.
///
/// # Examples
///
/// ```
/// use move_types::{Document, Filter, TermDictionary};
///
/// let mut dict = TermDictionary::new();
/// let filter = Filter::from_words(1, ["breaking", "news"], &mut dict);
/// let doc = Document::from_words(1, ["tonight", "news", "weather"], &mut dict);
/// assert!(filter.matches(&doc)); // shares the term "news"
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Filter {
    id: FilterId,
    /// Distinct query terms, sorted ascending.
    terms: Vec<TermId>,
}

impl Filter {
    /// Builds a filter from raw words, interning them in `dict`.
    pub fn from_words<'a, I, F>(id: F, words: I, dict: &mut TermDictionary) -> Self
    where
        I: IntoIterator<Item = &'a str>,
        F: Into<FilterId>,
    {
        Self::new(id, words.into_iter().map(|w| dict.intern(w)))
    }

    /// Builds a filter from term ids; duplicates are removed.
    pub fn new<I, F>(id: F, terms: I) -> Self
    where
        I: IntoIterator<Item = TermId>,
        F: Into<FilterId>,
    {
        let mut terms: Vec<TermId> = terms.into_iter().collect();
        terms.sort_unstable();
        terms.dedup();
        Self {
            id: id.into(),
            terms,
        }
    }

    /// The filter id.
    pub fn id(&self) -> FilterId {
        self.id
    }

    /// The query terms, sorted ascending.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of distinct query terms (`|f|` in the paper).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the filter has no terms (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the filter contains `term`.
    pub fn contains(&self, term: TermId) -> bool {
        self.terms.binary_search(&term).is_ok()
    }

    /// Boolean match (the paper's default semantics): true when the filter
    /// shares at least one term with `doc`.
    pub fn matches(&self, doc: &Document) -> bool {
        // Filters are short (2–3 terms), so per-term binary search into the
        // document's sorted term list beats a merge.
        self.terms.iter().any(|&t| doc.contains(t))
    }

    /// Number of filter terms appearing in `doc` — the raw overlap used by
    /// the similarity-threshold extension.
    pub fn overlap(&self, doc: &Document) -> usize {
        self.terms.iter().filter(|&&t| doc.contains(t)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(terms: &[u32]) -> Filter {
        Filter::new(0, terms.iter().map(|&t| TermId(t)))
    }

    fn doc(terms: &[u32]) -> Document {
        Document::from_occurrences(0, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn dedupes_terms() {
        let f = filter(&[3, 1, 3]);
        assert_eq!(f.terms(), &[TermId(1), TermId(3)]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn boolean_match_requires_one_common_term() {
        let f = filter(&[2, 9]);
        assert!(f.matches(&doc(&[9, 100])));
        assert!(f.matches(&doc(&[2])));
        assert!(!f.matches(&doc(&[1, 3, 8, 10])));
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = filter(&[]);
        assert!(f.is_empty());
        assert!(!f.matches(&doc(&[0, 1, 2])));
    }

    #[test]
    fn overlap_counts_shared_terms() {
        let f = filter(&[1, 2, 3]);
        assert_eq!(f.overlap(&doc(&[2, 3, 4])), 2);
        assert_eq!(f.overlap(&doc(&[7])), 0);
    }

    #[test]
    fn contains_is_exact() {
        let f = filter(&[5, 10]);
        assert!(f.contains(TermId(10)));
        assert!(!f.contains(TermId(7)));
    }
}
