//! Matching semantics.

use crate::{Document, Filter};
use serde::{Deserialize, Serialize};

/// How a document/filter pair is judged to match.
///
/// The paper's evaluation uses [`MatchSemantics::Boolean`]; §III-A notes that
/// the scheme extends to "similarity thresholds-based semantics" following
/// SIFT/STAIRS, which [`MatchSemantics::SimilarityThreshold`] provides: the
/// fraction of the filter's terms that occur in the document must reach the
/// threshold.
///
/// # Examples
///
/// ```
/// use move_types::{Document, Filter, MatchSemantics, TermDictionary};
///
/// let mut dict = TermDictionary::new();
/// let f = Filter::from_words(0, ["rust", "tokio"], &mut dict);
/// let d = Document::from_words(0, ["rust", "async"], &mut dict);
/// assert!(MatchSemantics::Boolean.matches(&f, &d));
/// assert!(MatchSemantics::similarity_threshold(0.5).matches(&f, &d));
/// assert!(!MatchSemantics::similarity_threshold(0.9).matches(&f, &d));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum MatchSemantics {
    /// Match when the filter shares at least one term with the document
    /// (the paper's default).
    #[default]
    Boolean,
    /// Match when `overlap(f, d) / |f| >= threshold`. A threshold of 1.0 is
    /// conjunctive matching (all filter terms must appear).
    SimilarityThreshold(
        /// Required fraction of the filter's terms present in the document,
        /// in `(0, 1]`.
        f64,
    ),
}

impl MatchSemantics {
    /// Creates a similarity-threshold semantics, clamping the threshold into
    /// `(0, 1]` (a non-positive threshold would degenerate to matching
    /// everything, including empty overlap).
    pub fn similarity_threshold(threshold: f64) -> Self {
        Self::SimilarityThreshold(threshold.clamp(f64::MIN_POSITIVE, 1.0))
    }

    /// Judges whether `filter` matches `doc` under these semantics.
    ///
    /// Empty filters never match.
    pub fn matches(&self, filter: &Filter, doc: &Document) -> bool {
        if filter.is_empty() {
            return false;
        }
        match *self {
            Self::Boolean => filter.matches(doc),
            Self::SimilarityThreshold(th) => {
                let overlap = filter.overlap(doc) as f64;
                overlap / filter.len() as f64 >= th
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TermId;

    fn f(terms: &[u32]) -> Filter {
        Filter::new(0, terms.iter().map(|&t| TermId(t)))
    }

    fn d(terms: &[u32]) -> Document {
        Document::from_occurrences(0, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn boolean_is_default() {
        assert_eq!(MatchSemantics::default(), MatchSemantics::Boolean);
    }

    #[test]
    fn threshold_one_is_conjunctive() {
        let sem = MatchSemantics::similarity_threshold(1.0);
        assert!(sem.matches(&f(&[1, 2]), &d(&[1, 2, 3])));
        assert!(!sem.matches(&f(&[1, 2]), &d(&[1, 3])));
    }

    #[test]
    fn threshold_is_fraction_of_filter_terms() {
        let sem = MatchSemantics::similarity_threshold(0.6);
        // 2 of 3 terms = 0.667 >= 0.6
        assert!(sem.matches(&f(&[1, 2, 3]), &d(&[1, 2])));
        // 1 of 3 terms = 0.333 < 0.6
        assert!(!sem.matches(&f(&[1, 2, 3]), &d(&[1])));
    }

    #[test]
    fn clamp_rejects_nonpositive_threshold() {
        let sem = MatchSemantics::similarity_threshold(-3.0);
        // Even a clamped tiny threshold requires a non-empty overlap.
        assert!(!sem.matches(&f(&[1]), &d(&[2])));
        assert!(sem.matches(&f(&[1]), &d(&[1])));
    }

    #[test]
    fn empty_filter_never_matches() {
        assert!(!MatchSemantics::Boolean.matches(&f(&[]), &d(&[1])));
        assert!(!MatchSemantics::similarity_threshold(0.5).matches(&f(&[]), &d(&[1])));
    }
}
