//! Term interning.

use crate::{MoveError, Result, TermId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A bidirectional mapping between term strings and dense [`TermId`]s.
///
/// Both documents and filters are represented as sets of `TermId`s (paper
/// §III-A); the dictionary is the single place where raw words are interned.
/// Ids are dense and stable: the first distinct term interned receives id 0,
/// the next id 1, and so on, which lets downstream code use plain vectors
/// indexed by `TermId` for per-term statistics.
///
/// # Examples
///
/// ```
/// use move_types::TermDictionary;
///
/// let mut dict = TermDictionary::new();
/// let a = dict.intern("alpha");
/// let b = dict.intern("beta");
/// assert_ne!(a, b);
/// assert_eq!(dict.intern("alpha"), a); // idempotent
/// assert_eq!(dict.term(a), Some("alpha"));
/// assert_eq!(dict.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermDictionary {
    /// Keyed by the same `Arc<str>` stored in `by_id`: each distinct term
    /// string is allocated exactly once.
    by_term: HashMap<Arc<str>, TermId>,
    by_id: Vec<Arc<str>>,
}

impl TermDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` distinct terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_term: HashMap::with_capacity(n),
            by_id: Vec::with_capacity(n),
        }
    }

    /// Interns `term`, returning its id. Repeated calls with the same term
    /// return the same id. Saturates at `TermId(u32::MAX)` if the id space
    /// is ever exhausted (2³² distinct terms); use
    /// [`TermDictionary::try_intern`] to observe that condition as an error.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.try_intern(term).unwrap_or(TermId(u32::MAX))
    }

    /// Interns `term`, returning its id, or [`MoveError::Internal`] once
    /// `u32::MAX` distinct terms have been interned.
    ///
    /// # Errors
    ///
    /// Returns [`MoveError::Internal`] when the dense `u32` id space is
    /// exhausted.
    pub fn try_intern(&mut self, term: &str) -> Result<TermId> {
        if let Some(&id) = self.by_term.get(term) {
            return Ok(id);
        }
        let raw = u32::try_from(self.by_id.len())
            .map_err(|_| MoveError::Internal("term dictionary overflowed u32 id space".into()))?;
        let id = TermId(raw);
        let shared: Arc<str> = Arc::from(term);
        self.by_term.insert(Arc::clone(&shared), id);
        self.by_id.push(shared);
        Ok(id)
    }

    /// Looks up the id of `term` without interning it.
    pub fn id(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Returns the term string for `id`, if `id` was produced by this
    /// dictionary.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.by_id.get(id.as_usize()).map(AsRef::as_ref)
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(TermId, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> + '_ {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_ref()))
    }
}

impl Serialize for TermDictionary {
    /// Serializes as the id-ordered term array; `by_term` is derived state
    /// and rebuilt on deserialization.
    fn to_value(&self) -> Value {
        Value::Array(
            self.by_id
                .iter()
                .map(|s| Value::String(s.to_string()))
                .collect(),
        )
    }
}

impl Deserialize for TermDictionary {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let Value::Array(items) = v else {
            return Err(DeError::expected("term array", v));
        };
        let mut dict = TermDictionary::with_capacity(items.len());
        for item in items {
            let Value::String(term) = item else {
                return Err(DeError::expected("term string", item));
            };
            dict.intern(term);
        }
        Ok(dict)
    }
}

impl<'a> Extend<&'a str> for TermDictionary {
    fn extend<T: IntoIterator<Item = &'a str>>(&mut self, iter: T) {
        for term in iter {
            self.intern(term);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut dict = TermDictionary::new();
        let ids: Vec<_> = ["a", "b", "c", "b", "a"]
            .iter()
            .map(|t| dict.intern(t))
            .collect();
        assert_eq!(
            ids,
            vec![TermId(0), TermId(1), TermId(2), TermId(1), TermId(0)]
        );
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn lookup_without_interning() {
        let mut dict = TermDictionary::new();
        dict.intern("x");
        assert_eq!(dict.id("x"), Some(TermId(0)));
        assert_eq!(dict.id("y"), None);
        assert_eq!(dict.len(), 1, "id() must not intern");
    }

    #[test]
    fn reverse_lookup() {
        let mut dict = TermDictionary::new();
        let id = dict.intern("hello");
        assert_eq!(dict.term(id), Some("hello"));
        assert_eq!(dict.term(TermId(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut dict = TermDictionary::with_capacity(3);
        dict.extend(["z", "y", "x"]);
        let terms: Vec<_> = dict.iter().map(|(_, t)| t).collect();
        assert_eq!(terms, vec!["z", "y", "x"]);
    }

    #[test]
    fn empty_dictionary() {
        let dict = TermDictionary::new();
        assert!(dict.is_empty());
        assert_eq!(dict.iter().count(), 0);
    }
}
