//! Strongly-typed identifiers.
//!
//! Every entity in the system — terms, filters, documents, cluster nodes and
//! racks — is addressed by a dense integer id wrapped in a newtype
//! (C-NEWTYPE), so ids of different kinds cannot be mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value of this id.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("# use move_types::", stringify!($name), ";")]
            #[doc = concat!("assert_eq!(", stringify!($name), "(7).as_usize(), 7);")]
            /// ```
            #[inline]
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            #[inline]
            fn from(id: $name) -> Self {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of an interned term (a word after tokenization and
    /// stemming). Terms are interned by
    /// [`TermDictionary`](crate::TermDictionary) and ids are dense: the
    /// `k`-th distinct term receives id `k`.
    TermId,
    u32,
    "t"
);

id_type!(
    /// Identifier of a registered profile filter.
    FilterId,
    u64,
    "f"
);

id_type!(
    /// Identifier of a published content document.
    DocId,
    u64,
    "d"
);

id_type!(
    /// Identifier of a *canonical* (deduplicated) filter predicate.
    ///
    /// The control-plane aggregation layer collapses every registered
    /// [`Filter`](crate::Filter) with the same semantics and sorted term
    /// set onto one canonical predicate; posting entries are stored once
    /// under the canonical id, and a compressed fan-out set maps it back to
    /// its subscriber [`FilterId`]s. Canonical ids live in the same integer
    /// space as filter ids (the first subscriber usually donates its id),
    /// so the two convert explicitly — the newtype exists to keep the
    /// aggregator's API boundary honest.
    CanonicalFilterId,
    u64,
    "c"
);

impl CanonicalFilterId {
    /// The canonical id as it appears inside posting lists and match
    /// results, where canonical predicates occupy the `FilterId` space.
    #[inline]
    pub fn as_filter_id(self) -> FilterId {
        FilterId(self.0)
    }
}

impl From<FilterId> for CanonicalFilterId {
    #[inline]
    fn from(id: FilterId) -> Self {
        Self(id.0)
    }
}

id_type!(
    /// Identifier of a cluster node (a simulated commodity machine).
    NodeId,
    u32,
    "n"
);

id_type!(
    /// Identifier of a rack in the cluster topology. Rack-aware replica
    /// placement (paper §V, "Selection of allocated nodes") depends on it.
    RackId,
    u32,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TermId(3).to_string(), "t3");
        assert_eq!(FilterId(42).to_string(), "f42");
        assert_eq!(DocId(0).to_string(), "d0");
        assert_eq!(NodeId(9).to_string(), "n9");
        assert_eq!(RackId(1).to_string(), "r1");
    }

    #[test]
    fn conversions_round_trip() {
        let id = TermId::from(5u32);
        let raw: u32 = id.into();
        assert_eq!(raw, 5);
        assert_eq!(id.as_usize(), 5);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(TermId::default(), TermId(0));
        assert_eq!(FilterId::default().as_usize(), 0);
    }
}
