//! Property and serde tests for the core types.

use move_types::{Document, Filter, MatchSemantics, TermDictionary, TermId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn document_invariants(occurrences in prop::collection::vec(0u32..500, 0..200)) {
        let d = Document::from_occurrences(0u64, occurrences.iter().map(|&t| TermId(t)));
        // Sorted strictly ascending distinct terms.
        prop_assert!(d.terms().windows(2).all(|w| w[0] < w[1]));
        // Counts sum to the number of occurrences.
        let total: u64 = d.term_counts().map(|(_, c)| u64::from(c)).sum();
        prop_assert_eq!(total, occurrences.len() as u64);
        // Every occurrence is contained; nothing else is.
        for &t in &occurrences {
            prop_assert!(d.contains(TermId(t)));
        }
        prop_assert!(!d.contains(TermId(10_000)));
    }

    #[test]
    fn filter_match_agrees_with_set_intersection(
        f_terms in prop::collection::btree_set(0u32..100, 0..6),
        d_terms in prop::collection::btree_set(0u32..100, 0..40),
    ) {
        let f = Filter::new(0u64, f_terms.iter().map(|&t| TermId(t)));
        let d = Document::from_distinct_terms(0u64, d_terms.iter().map(|&t| TermId(t)));
        let expected = f_terms.intersection(&d_terms).count();
        prop_assert_eq!(f.overlap(&d), expected);
        prop_assert_eq!(f.matches(&d), expected > 0);
        prop_assert_eq!(
            d.intersection_size(f.terms()),
            expected
        );
    }

    #[test]
    fn threshold_is_monotone(
        f_terms in prop::collection::btree_set(0u32..50, 1..6),
        d_terms in prop::collection::btree_set(0u32..50, 0..30),
        lo in 0.1f64..0.5,
        hi in 0.5f64..1.0,
    ) {
        let f = Filter::new(0u64, f_terms.into_iter().map(TermId));
        let d = Document::from_distinct_terms(0u64, d_terms.into_iter().map(TermId));
        let strict = MatchSemantics::similarity_threshold(hi);
        let loose = MatchSemantics::similarity_threshold(lo);
        // A match at the stricter threshold implies one at the looser.
        if strict.matches(&f, &d) {
            prop_assert!(loose.matches(&f, &d));
        }
    }

    #[test]
    fn serde_round_trips(
        occurrences in prop::collection::vec(0u32..100, 0..50),
        f_terms in prop::collection::vec(0u32..100, 0..5),
    ) {
        let d = Document::from_occurrences(3u64, occurrences.into_iter().map(TermId));
        let f = Filter::new(9u64, f_terms.into_iter().map(TermId));
        let d2: Document = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
        let f2: Filter = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
        prop_assert_eq!(d, d2);
        prop_assert_eq!(f, f2);
    }
}

#[test]
fn dictionary_serde_round_trip() {
    let mut dict = TermDictionary::new();
    for w in ["alpha", "beta", "gamma"] {
        dict.intern(w);
    }
    let back: TermDictionary =
        serde_json::from_str(&serde_json::to_string(&dict).unwrap()).unwrap();
    assert_eq!(back.len(), 3);
    assert_eq!(back.id("beta"), dict.id("beta"));
    assert_eq!(back.term(move_types::TermId(2)), Some("gamma"));
}
