//! The per-node inverted index and its two match algorithms.

use crate::PostingList;
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use std::collections::HashMap;

/// The result of a match operation, including the work performed — the raw
/// material of the cost model (posting-list retrievals are the disk seeks
/// that dominate latency, §IV-B1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Ids of the filters that match the document, sorted ascending.
    pub matched: Vec<FilterId>,
    /// Posting lists retrieved.
    pub lists_retrieved: u64,
    /// Posting entries scanned across those lists.
    pub postings_scanned: u64,
}

/// A node-local inverted index over registered filters.
///
/// Supports the paper's two registration styles: [`InvertedIndex::insert`]
/// builds posting lists for every term of the filter (the rendezvous
/// scheme's full local index), while [`InvertedIndex::insert_for_term`]
/// builds *only* the posting list of the routing term — "though the filters
/// f contain a term tⱼ (≠ tᵢ), the home node of tᵢ will not build the
/// posting list for such tⱼ" (§III-B). Full filter bodies are stored either
/// way, as the similarity-threshold semantics needs them.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: HashMap<TermId, PostingList>,
    filters: HashMap<FilterId, Filter>,
    semantics: MatchSemantics,
}

impl InvertedIndex {
    /// Creates an empty index with the given matching semantics.
    pub fn new(semantics: MatchSemantics) -> Self {
        Self {
            postings: HashMap::new(),
            filters: HashMap::new(),
            semantics,
        }
    }

    /// The matching semantics in force.
    pub fn semantics(&self) -> MatchSemantics {
        self.semantics
    }

    /// Registers a filter, indexing it under all of its terms.
    pub fn insert(&mut self, filter: Filter) {
        for &t in filter.terms() {
            self.postings.entry(t).or_default().insert(filter.id());
        }
        self.filters.insert(filter.id(), filter);
    }

    /// Registers a filter but builds a posting entry only for `term` — the
    /// home-node registration of the distributed inverted list.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the filter actually contains `term`.
    pub fn insert_for_term(&mut self, filter: Filter, term: TermId) {
        debug_assert!(
            filter.contains(term),
            "filter {} does not contain routing term {term}",
            filter.id()
        );
        self.postings.entry(term).or_default().insert(filter.id());
        self.filters.insert(filter.id(), filter);
    }

    /// Removes a filter's posting under one specific term, dropping the
    /// stored filter body only when no posting references it anymore — the
    /// inverse of [`InvertedIndex::insert_for_term`]. Returns whether the
    /// posting existed.
    pub fn remove_term_posting(&mut self, id: FilterId, term: TermId) -> bool {
        let Some(pl) = self.postings.get_mut(&term) else {
            return false;
        };
        if !pl.remove(id) {
            return false;
        }
        if pl.is_empty() {
            self.postings.remove(&term);
        }
        let referenced = self.postings.values().any(|pl| pl.contains(id));
        if !referenced {
            self.filters.remove(&id);
        }
        true
    }

    /// Whether a posting entry `(term, id)` is currently indexed — the
    /// membership probe the allocation-coverage invariants use to verify
    /// that a filter copy actually landed on a grid node.
    pub fn has_term_posting(&self, id: FilterId, term: TermId) -> bool {
        self.postings.get(&term).is_some_and(|pl| pl.contains(id))
    }

    /// Unregisters a filter everywhere it is indexed; returns whether it was
    /// present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(filter) = self.filters.remove(&id) else {
            return false;
        };
        for t in filter.terms() {
            if let Some(pl) = self.postings.get_mut(t) {
                pl.remove(id);
                if pl.is_empty() {
                    self.postings.remove(t);
                }
            }
        }
        true
    }

    /// Number of registered filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether no filters are registered.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The stored filter body for `id`.
    pub fn filter(&self, id: FilterId) -> Option<&Filter> {
        self.filters.get(&id)
    }

    /// Length of the posting list of `term` (0 if absent).
    pub fn posting_len(&self, term: TermId) -> usize {
        self.postings.get(&term).map_or(0, PostingList::len)
    }

    /// Terms that currently have a posting list.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.postings.keys().copied()
    }

    /// Total posting entries across all lists (the index's storage weight).
    pub fn total_postings(&self) -> u64 {
        self.postings.values().map(|p| p.len() as u64).sum()
    }

    /// The home-node match (§III-B): retrieve only the posting list of
    /// `term` and judge its filters against `doc`.
    ///
    /// Under boolean semantics every filter in the list matches by
    /// construction (it contains `term`, which the document contains);
    /// under threshold semantics each stored filter body is checked.
    pub fn match_term(&self, doc: &Document, term: TermId) -> MatchOutcome {
        debug_assert!(doc.contains(term), "document was routed by a term it lacks");
        let mut out = MatchOutcome::default();
        let Some(pl) = self.postings.get(&term) else {
            return out;
        };
        out.lists_retrieved = 1;
        out.postings_scanned = pl.len() as u64;
        match self.semantics {
            MatchSemantics::Boolean => out.matched = pl.ids().to_vec(),
            MatchSemantics::SimilarityThreshold(_) => {
                out.matched = pl
                    .ids()
                    .iter()
                    .copied()
                    .filter(|id| {
                        self.filters
                            .get(id)
                            .is_some_and(|f| self.semantics.matches(f, doc))
                    })
                    .collect();
            }
        }
        out
    }

    /// The centralized SIFT match: retrieve the posting lists of *all*
    /// document terms, accumulate per-filter hit counts, and emit the
    /// filters satisfying the semantics. This is what each rendezvous node
    /// runs per document — `|d|` list retrievals, the reason large articles
    /// hurt (§VI-C).
    pub fn match_document(&self, doc: &Document) -> MatchOutcome {
        let mut out = MatchOutcome::default();
        let mut hits: HashMap<FilterId, u32> = HashMap::new();
        for t in doc.terms() {
            if let Some(pl) = self.postings.get(t) {
                out.lists_retrieved += 1;
                out.postings_scanned += pl.len() as u64;
                for &id in pl.ids() {
                    *hits.entry(id).or_insert(0) += 1;
                }
            }
        }
        out.matched = match self.semantics {
            MatchSemantics::Boolean => hits.into_keys().collect(),
            MatchSemantics::SimilarityThreshold(th) => hits
                .into_iter()
                .filter(|&(id, count)| {
                    self.filters
                        .get(&id)
                        .is_some_and(|f| f64::from(count) / f.len() as f64 >= th)
                })
                .map(|(id, _)| id)
                .collect(),
        };
        out.matched.sort_unstable();
        out
    }
}

/// The oracle: match `doc` against every filter directly. Completeness
/// tests compare every scheme's delivered set against this.
pub fn brute_force<'a, I>(filters: I, doc: &Document, semantics: MatchSemantics) -> Vec<FilterId>
where
    I: IntoIterator<Item = &'a Filter>,
{
    let mut out: Vec<FilterId> = filters
        .into_iter()
        .filter(|f| semantics.matches(f, doc))
        .map(Filter::id)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn d(terms: &[u32]) -> Document {
        Document::from_occurrences(0, terms.iter().map(|&t| TermId(t)))
    }

    fn boolean_index(filters: &[Filter]) -> InvertedIndex {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for fl in filters {
            idx.insert(fl.clone());
        }
        idx
    }

    #[test]
    fn sift_equals_brute_force_boolean() {
        let filters = vec![f(1, &[1, 2]), f(2, &[3]), f(3, &[2, 4]), f(4, &[9])];
        let idx = boolean_index(&filters);
        let doc = d(&[2, 3, 7]);
        let got = idx.match_document(&doc);
        assert_eq!(
            got.matched,
            brute_force(&filters, &doc, MatchSemantics::Boolean)
        );
        assert_eq!(got.lists_retrieved, 2); // terms 2 and 3 have lists
        assert_eq!(got.postings_scanned, 3); // f1,f3 under 2; f2 under 3
    }

    #[test]
    fn sift_equals_brute_force_threshold() {
        let sem = MatchSemantics::similarity_threshold(0.6);
        let filters = vec![f(1, &[1, 2, 3]), f(2, &[1, 9]), f(3, &[2])];
        let mut idx = InvertedIndex::new(sem);
        for fl in &filters {
            idx.insert(fl.clone());
        }
        let doc = d(&[1, 2, 5]);
        assert_eq!(
            idx.match_document(&doc).matched,
            brute_force(&filters, &doc, sem)
        );
    }

    #[test]
    fn match_term_returns_exactly_the_posting() {
        let filters = vec![f(1, &[1, 2]), f(2, &[2]), f(3, &[3])];
        let idx = boolean_index(&filters);
        let doc = d(&[2]);
        let got = idx.match_term(&doc, TermId(2));
        assert_eq!(got.matched, vec![FilterId(1), FilterId(2)]);
        assert_eq!(got.lists_retrieved, 1);
        assert_eq!(got.postings_scanned, 2);
    }

    #[test]
    fn match_term_threshold_checks_bodies() {
        let sem = MatchSemantics::similarity_threshold(1.0);
        let mut idx = InvertedIndex::new(sem);
        idx.insert(f(1, &[1, 2])); // needs both terms
        idx.insert(f(2, &[1]));
        let doc = d(&[1, 5]);
        let got = idx.match_term(&doc, TermId(1));
        assert_eq!(got.matched, vec![FilterId(2)]);
        assert_eq!(got.postings_scanned, 2);
    }

    #[test]
    fn union_of_per_term_matches_equals_sift() {
        let filters = vec![f(1, &[1, 2]), f(2, &[2, 3]), f(3, &[4]), f(4, &[1, 4])];
        let idx = boolean_index(&filters);
        let doc = d(&[1, 2, 4]);
        let mut union: Vec<FilterId> = doc
            .terms()
            .iter()
            .flat_map(|&t| idx.match_term(&doc, t).matched)
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union, idx.match_document(&doc).matched);
    }

    #[test]
    fn insert_for_term_builds_single_posting() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        idx.insert_for_term(f(1, &[1, 2]), TermId(1));
        assert_eq!(idx.posting_len(TermId(1)), 1);
        assert_eq!(idx.posting_len(TermId(2)), 0);
        assert!(idx.filter(FilterId(1)).is_some());
    }

    #[test]
    fn remove_cleans_postings() {
        let mut idx = boolean_index(&[f(1, &[1, 2]), f(2, &[2])]);
        assert!(idx.remove(FilterId(1)));
        assert!(!idx.remove(FilterId(1)));
        assert_eq!(idx.posting_len(TermId(1)), 0);
        assert_eq!(idx.posting_len(TermId(2)), 1);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.total_postings(), 1);
    }

    #[test]
    fn remove_term_posting_keeps_other_postings() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        let fl = f(1, &[1, 2]);
        idx.insert_for_term(fl.clone(), TermId(1));
        idx.insert_for_term(fl, TermId(2));
        assert!(idx.remove_term_posting(FilterId(1), TermId(1)));
        assert!(!idx.remove_term_posting(FilterId(1), TermId(1)));
        assert_eq!(idx.posting_len(TermId(1)), 0);
        assert_eq!(idx.posting_len(TermId(2)), 1);
        assert!(idx.filter(FilterId(1)).is_some(), "body still referenced");
        assert!(idx.remove_term_posting(FilterId(1), TermId(2)));
        assert!(
            idx.filter(FilterId(1)).is_none(),
            "body dropped with last posting"
        );
    }

    #[test]
    fn empty_index_matches_nothing() {
        let idx = InvertedIndex::new(MatchSemantics::Boolean);
        let doc = d(&[1, 2, 3]);
        let got = idx.match_document(&doc);
        assert!(got.matched.is_empty());
        assert_eq!(got.lists_retrieved, 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        idx.insert(f(1, &[1]));
        idx.insert(f(1, &[1]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.posting_len(TermId(1)), 1);
    }
}
