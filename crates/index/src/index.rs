//! The per-node inverted index and its two match algorithms.

use crate::PostingList;
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The result of a match operation, including the work performed — the raw
/// material of the cost model (posting-list retrievals are the disk seeks
/// that dominate latency, §IV-B1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Ids of the filters that match the document, sorted ascending.
    pub matched: Vec<FilterId>,
    /// Posting lists retrieved.
    pub lists_retrieved: u64,
    /// Posting entries scanned across those lists.
    pub postings_scanned: u64,
}

impl MatchOutcome {
    /// Resets the outcome for reuse, keeping the `matched` allocation.
    pub fn clear(&mut self) {
        self.matched.clear();
        self.lists_retrieved = 0;
        self.postings_scanned = 0;
    }
}

/// Reusable working memory for the match kernels: the concatenated posting
/// ids of one document's terms, plus a dense-id bitmap for sort-free
/// deduplication. Owned per worker (or per scheme) so the steady-state
/// match kernel performs zero allocations.
#[derive(Debug, Default)]
pub struct MatchScratch {
    ids: Vec<FilterId>,
    /// Bitmap over dense filter ids, used by [`MatchScratch::sort_dedup`].
    /// Invariant: all-zero between calls (each extraction pass clears the
    /// words it visits), so the buffer never needs a bulk reset.
    words: Vec<u64>,
}

/// Hard ceiling on the dedup bitmap (8 MiB of `u64`s / ids below 2²⁹), so
/// a single huge filter id cannot balloon the scratch allocation.
const DEDUP_BITMAP_MAX_WORDS: u64 = 1 << 20;

/// Most posting lists a boolean document match feeds through the galloping
/// block-wise union ([`crate::blocks::union_lists_into`]) before the
/// kernel switches to concatenate-and-bitmap-dedup. The union advances by
/// scanning every cursor per emitted id, so its per-id cost grows with the
/// list count: with a handful of long lists the block-summary bulk copies
/// win outright, but a term-rich document under the flooding scheme
/// retrieves dozens of short interleaved lists and the cursor scans
/// swamp the sequential concat path (measured ~4× on the RS hot path).
const UNION_MAX_LISTS: usize = 4;

impl MatchScratch {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts `ids` ascending and drops duplicates — the delivery-set
    /// normalization every match accumulator ends with.
    ///
    /// Filter ids are dense in practice, so instead of a comparison sort
    /// over the full concatenation this marks ids in a reusable bitmap and
    /// re-emits them by scanning the touched word range in order: O(n +
    /// max_id/64) versus O(n log n). Falls back to `sort_unstable` when
    /// the id space is too sparse for the scan to pay (or ids exceed the
    /// bitmap ceiling), so the result is identical either way.
    pub fn sort_dedup(&mut self, ids: &mut Vec<FilterId>) {
        Self::sort_dedup_in(&mut self.words, ids);
    }

    fn sort_dedup_in(words: &mut Vec<u64>, ids: &mut Vec<FilterId>) {
        let mut max = 0u64;
        for id in ids.iter() {
            max = max.max(id.0);
        }
        let needed = max / 64 + 1;
        let worthwhile = (ids.len() as u64).saturating_mul(4).max(64);
        if ids.is_empty() || needed > worthwhile.min(DEDUP_BITMAP_MAX_WORDS) {
            ids.sort_unstable();
            ids.dedup();
            return;
        }
        let needed = needed as usize;
        if words.len() < needed {
            words.resize(needed, 0);
        }
        for id in ids.iter() {
            words[(id.0 / 64) as usize] |= 1u64 << (id.0 % 64);
        }
        ids.clear();
        for (w, slot) in words.iter_mut().enumerate().take(needed) {
            let mut word = std::mem::take(slot);
            while word != 0 {
                let bit = word.trailing_zeros() as u64;
                ids.push(FilterId(w as u64 * 64 + bit));
                word &= word - 1;
            }
        }
    }
}

/// A stored filter body plus the number of posting entries referencing it.
/// The refcount makes [`InvertedIndex::remove_term_posting`] O(log n)
/// instead of a scan over every posting list.
#[derive(Debug, Clone)]
struct StoredFilter {
    body: Arc<Filter>,
    postings: u32,
}

/// Process-wide count of deep [`InvertedIndex`] clones — the test double
/// behind the "allocation refreshes ship `Arc` snapshots, not copies"
/// guarantee. Incremented by `<InvertedIndex as Clone>::clone`; an
/// `Arc<InvertedIndex>` handed around the runtime does not touch it.
static DEEP_CLONES: AtomicU64 = AtomicU64::new(0);

/// Deep clones performed process-wide since start (see
/// [`InvertedIndex`]'s `Clone` impl). Test instrumentation: assert a
/// hot path performs zero deep copies by sampling before and after.
#[must_use]
pub fn deep_clone_count() -> u64 {
    DEEP_CLONES.load(Ordering::Relaxed)
}

/// A node-local inverted index over registered filters.
///
/// Supports the paper's two registration styles: [`InvertedIndex::insert`]
/// builds posting lists for every term of the filter (the rendezvous
/// scheme's full local index), while [`InvertedIndex::insert_for_term`]
/// builds *only* the posting list of the routing term — "though the filters
/// f contain a term tⱼ (≠ tᵢ), the home node of tᵢ will not build the
/// posting list for such tⱼ" (§III-B). Full filter bodies are stored either
/// way, as the similarity-threshold semantics needs them.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: HashMap<TermId, PostingList>,
    filters: HashMap<FilterId, StoredFilter>,
    semantics: MatchSemantics,
}

impl Clone for InvertedIndex {
    /// A deep copy of every posting list (filter bodies stay shared behind
    /// their `Arc`s). Counted in [`deep_clone_count`] so tests can pin hot
    /// paths to structural sharing.
    fn clone(&self) -> Self {
        DEEP_CLONES.fetch_add(1, Ordering::Relaxed);
        Self {
            postings: self.postings.clone(),
            filters: self.filters.clone(),
            semantics: self.semantics,
        }
    }
}

impl InvertedIndex {
    /// Creates an empty index with the given matching semantics.
    pub fn new(semantics: MatchSemantics) -> Self {
        Self {
            postings: HashMap::new(),
            filters: HashMap::new(),
            semantics,
        }
    }

    /// Bulk construction from `(routing term, filter)` pairs: each pair
    /// becomes one posting entry, exactly as a sequence of
    /// [`InvertedIndex::insert_shared_for_term`] calls would, but each
    /// posting list is built sort-once instead of by O(n) sorted inserts —
    /// the allocation-rebuild fast path.
    pub fn build_from<I>(semantics: MatchSemantics, entries: I) -> Self
    where
        I: IntoIterator<Item = (TermId, Arc<Filter>)>,
    {
        let mut lists: HashMap<TermId, Vec<FilterId>> = HashMap::new();
        let mut filters: HashMap<FilterId, StoredFilter> = HashMap::new();
        for (t, f) in entries {
            debug_assert!(
                f.contains(t),
                "filter {} does not contain routing term {t}",
                f.id()
            );
            lists.entry(t).or_default().push(f.id());
            filters.entry(f.id()).or_insert(StoredFilter {
                body: f,
                postings: 0,
            });
        }
        let postings = lists
            .into_iter()
            .map(|(t, mut ids)| {
                ids.sort_unstable();
                ids.dedup();
                for id in &ids {
                    if let Some(s) = filters.get_mut(id) {
                        s.postings += 1;
                    }
                }
                // One sorted-batch merge instead of per-id inserts — for a
                // fresh list this is a straight memcpy.
                let mut pl = PostingList::new();
                pl.extend_sorted(&ids);
                (t, pl)
            })
            .collect();
        Self {
            postings,
            filters,
            semantics,
        }
    }

    /// The matching semantics in force.
    pub fn semantics(&self) -> MatchSemantics {
        self.semantics
    }

    /// Registers a filter, indexing it under all of its terms.
    pub fn insert(&mut self, filter: Filter) {
        self.insert_shared(Arc::new(filter));
    }

    /// [`InvertedIndex::insert`] with a shared body: all posting entries
    /// and the stored body reference one allocation, so registering the
    /// same filter on many shards costs one `Arc` bump per shard.
    pub fn insert_shared(&mut self, filter: Arc<Filter>) {
        let mut added = 0u32;
        for &t in filter.terms() {
            if self.postings.entry(t).or_default().insert(filter.id()) {
                added += 1;
            }
        }
        self.store_body(filter, added);
    }

    /// Registers a filter but builds a posting entry only for `term` — the
    /// home-node registration of the distributed inverted list.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the filter actually contains `term`.
    pub fn insert_for_term(&mut self, filter: Filter, term: TermId) {
        self.insert_shared_for_term(Arc::new(filter), term);
    }

    /// [`InvertedIndex::insert_for_term`] with a shared body (see
    /// [`InvertedIndex::insert_shared`]).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the filter actually contains `term`.
    pub fn insert_shared_for_term(&mut self, filter: Arc<Filter>, term: TermId) {
        debug_assert!(
            filter.contains(term),
            "filter {} does not contain routing term {term}",
            filter.id()
        );
        let added = u32::from(self.postings.entry(term).or_default().insert(filter.id()));
        self.store_body(filter, added);
    }

    /// Stores (or refreshes) a filter body and bumps its posting refcount
    /// by `added`.
    fn store_body(&mut self, filter: Arc<Filter>, added: u32) {
        match self.filters.entry(filter.id()) {
            Entry::Occupied(mut o) => {
                let s = o.get_mut();
                s.body = filter;
                s.postings += added;
            }
            Entry::Vacant(v) => {
                v.insert(StoredFilter {
                    body: filter,
                    postings: added,
                });
            }
        }
    }

    /// Removes a filter's posting under one specific term, dropping the
    /// stored filter body only when no posting references it anymore — the
    /// inverse of [`InvertedIndex::insert_for_term`]. Returns whether the
    /// posting existed. O(log n) via the per-filter posting refcount (no
    /// scan over other lists).
    pub fn remove_term_posting(&mut self, id: FilterId, term: TermId) -> bool {
        let Some(pl) = self.postings.get_mut(&term) else {
            return false;
        };
        if !pl.remove(id) {
            return false;
        }
        if pl.is_empty() {
            self.postings.remove(&term);
        }
        if let Entry::Occupied(mut o) = self.filters.entry(id) {
            let s = o.get_mut();
            s.postings = s.postings.saturating_sub(1);
            if s.postings == 0 {
                o.remove();
            }
        }
        true
    }

    /// Whether a posting entry `(term, id)` is currently indexed — the
    /// membership probe the allocation-coverage invariants use to verify
    /// that a filter copy actually landed on a grid node.
    pub fn has_term_posting(&self, id: FilterId, term: TermId) -> bool {
        self.postings.get(&term).is_some_and(|pl| pl.contains(id))
    }

    /// Unregisters a filter everywhere it is indexed; returns whether it was
    /// present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let Some(stored) = self.filters.remove(&id) else {
            return false;
        };
        for t in stored.body.terms() {
            if let Some(pl) = self.postings.get_mut(t) {
                pl.remove(id);
                if pl.is_empty() {
                    self.postings.remove(t);
                }
            }
        }
        true
    }

    /// Number of registered filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether no filters are registered.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The stored filter body for `id`.
    pub fn filter(&self, id: FilterId) -> Option<&Filter> {
        self.filters.get(&id).map(|s| s.body.as_ref())
    }

    /// The shared handle to the stored filter body for `id` — lets callers
    /// propagate the same allocation instead of cloning the body.
    pub fn shared_filter(&self, id: FilterId) -> Option<&Arc<Filter>> {
        self.filters.get(&id).map(|s| &s.body)
    }

    /// Length of the posting list of `term` (0 if absent).
    pub fn posting_len(&self, term: TermId) -> usize {
        self.postings.get(&term).map_or(0, PostingList::len)
    }

    /// The posting list of `term`, if one exists — direct list access for
    /// the term-major batch kernel of the match lanes, which scans each
    /// distinct term's blocks once per batch and scatters the ids into
    /// every subscribing document's outcome.
    pub fn posting(&self, term: TermId) -> Option<&PostingList> {
        self.postings.get(&term)
    }

    /// Terms that currently have a posting list.
    pub fn terms(&self) -> impl Iterator<Item = TermId> + '_ {
        self.postings.keys().copied()
    }

    /// Total posting entries across all lists (the index's storage weight).
    pub fn total_postings(&self) -> u64 {
        self.postings.values().map(|p| p.len() as u64).sum()
    }

    /// Ids of every stored filter body, in arbitrary order.
    pub fn filter_ids(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.filters.keys().copied()
    }

    /// Approximate heap footprint of the index in bytes: posting lists,
    /// the filter directory, and the term bodies behind it. `Arc`-shared
    /// filter bodies are charged once per index that stores them, which is
    /// what the control-plane bytes/filter accounting wants (each node
    /// would hold its own copy across real machines).
    pub fn estimated_bytes(&self) -> usize {
        let lists: usize = self
            .postings
            .values()
            .map(PostingList::estimated_bytes)
            .sum();
        let posting_map = self.postings.capacity()
            * (std::mem::size_of::<TermId>() + std::mem::size_of::<PostingList>());
        let bodies: usize = self
            .filters
            .values()
            .map(|s| std::mem::size_of::<Filter>() + std::mem::size_of_val(s.body.terms()))
            .sum();
        let filter_map = self.filters.capacity()
            * (std::mem::size_of::<FilterId>() + std::mem::size_of::<StoredFilter>());
        lists + posting_map + bodies + filter_map
    }

    /// The home-node match (§III-B): retrieve only the posting list of
    /// `term` and judge its filters against `doc`.
    ///
    /// Under boolean semantics every filter in the list matches by
    /// construction (it contains `term`, which the document contains);
    /// under threshold semantics each stored filter body is checked.
    pub fn match_term(&self, doc: &Document, term: TermId) -> MatchOutcome {
        let mut out = MatchOutcome::default();
        self.match_term_into(doc, term, &mut out);
        out
    }

    /// [`InvertedIndex::match_term`] writing into a caller-owned outcome:
    /// appends matches to `out.matched` and adds to the work counters
    /// without clearing, so a worker can accumulate several routed terms
    /// (and many documents' worth of capacity) into one buffer. Ids
    /// appended by a single call are sorted; accumulating callers dedup
    /// across calls themselves.
    pub fn match_term_into(&self, doc: &Document, term: TermId, out: &mut MatchOutcome) {
        debug_assert!(doc.contains(term), "document was routed by a term it lacks");
        let Some(pl) = self.postings.get(&term) else {
            return;
        };
        out.lists_retrieved += 1;
        out.postings_scanned += pl.len() as u64;
        match self.semantics {
            MatchSemantics::Boolean => {
                out.matched.reserve(pl.len());
                for block in pl.blocks() {
                    out.matched.extend_from_slice(block.as_slice());
                }
            }
            MatchSemantics::SimilarityThreshold(_) => {
                out.matched.extend(pl.iter().filter(|id| {
                    self.filters
                        .get(id)
                        .is_some_and(|s| self.semantics.matches(&s.body, doc))
                }));
            }
        }
    }

    /// [`InvertedIndex::match_term_into`] over a slice of terms — the
    /// chunked scan unit of the work-stealing match lanes. Appends and
    /// accumulates exactly like a loop of per-term calls would: summing
    /// the outcomes of disjoint chunks reproduces the counters (and,
    /// after one sort+dedup, the match set) of the unchunked scan.
    pub fn match_terms_into(&self, doc: &Document, terms: &[TermId], out: &mut MatchOutcome) {
        for &t in terms {
            self.match_term_into(doc, t, out);
        }
    }

    /// The centralized SIFT match: retrieve the posting lists of *all*
    /// document terms, accumulate per-filter hit counts, and emit the
    /// filters satisfying the semantics. This is what each rendezvous node
    /// runs per document — `|d|` list retrievals, the reason large articles
    /// hurt (§VI-C).
    pub fn match_document(&self, doc: &Document) -> MatchOutcome {
        let mut out = MatchOutcome::default();
        self.match_document_into(doc, &mut MatchScratch::new(), &mut out);
        out
    }

    /// [`InvertedIndex::match_document`] with caller-owned buffers — the
    /// SIFT kernel with steady-state id buffers reused across documents
    /// (only small per-call cursor vectors are allocated).
    ///
    /// Under boolean semantics, a document touching at most
    /// [`UNION_MAX_LISTS`] posting lists is combined by the galloping
    /// block-wise union of [`crate::blocks`]: block summaries (min/max id)
    /// let whole blocks be bulk-copied when they cannot overlap any other
    /// list, so the sorted, deduplicated match set is produced directly
    /// with no post-hoc sort pass. Term-rich documents switch to
    /// concatenating every list's blocks and deduplicating through the
    /// dense bitmap — the union's per-id cursor scans grow with the list
    /// count while the concat path stays sequential. Both produce the same
    /// canonical set, and counters always charge the full posting
    /// lengths — the cost model's retrieval charge is layout-independent.
    ///
    /// Under threshold semantics it concatenates the (sorted) posting
    /// slices of the document's terms into `scratch` and sorts once:
    /// because every posting list holds a filter id at most once, the run
    /// length of an id in the sorted concatenation *is* its per-filter hit
    /// count. Matches are appended to `out.matched` in ascending order;
    /// counters accumulate.
    pub fn match_document_into(
        &self,
        doc: &Document,
        scratch: &mut MatchScratch,
        out: &mut MatchOutcome,
    ) {
        let MatchScratch { ids, words } = scratch;
        ids.clear();
        match self.semantics {
            MatchSemantics::Boolean => {
                let mut lists: Vec<&crate::blocks::BlockStore> =
                    Vec::with_capacity(doc.terms().len());
                for t in doc.terms() {
                    if let Some(pl) = self.postings.get(t) {
                        out.lists_retrieved += 1;
                        out.postings_scanned += pl.len() as u64;
                        lists.push(pl.store());
                    }
                }
                if lists.len() <= UNION_MAX_LISTS {
                    crate::blocks::union_lists_into(&lists, ids);
                } else {
                    for l in &lists {
                        for block in l.blocks() {
                            ids.extend_from_slice(block.as_slice());
                        }
                    }
                    MatchScratch::sort_dedup_in(words, ids);
                }
                out.matched.extend_from_slice(ids);
            }
            MatchSemantics::SimilarityThreshold(th) => {
                for t in doc.terms() {
                    if let Some(pl) = self.postings.get(t) {
                        out.lists_retrieved += 1;
                        out.postings_scanned += pl.len() as u64;
                        for block in pl.blocks() {
                            ids.extend_from_slice(block.as_slice());
                        }
                    }
                }
                // Threshold semantics needs per-id multiplicities (run
                // lengths), which the bitmap erases — sort instead.
                ids.sort_unstable();
                let mut i = 0;
                while i < ids.len() {
                    let id = ids[i];
                    let mut j = i + 1;
                    while j < ids.len() && ids[j] == id {
                        j += 1;
                    }
                    let count = (j - i) as u32;
                    if self
                        .filters
                        .get(&id)
                        .is_some_and(|s| f64::from(count) / s.body.len() as f64 >= th)
                    {
                        out.matched.push(id);
                    }
                    i = j;
                }
            }
        }
    }
}

/// The oracle: match `doc` against every filter directly. Completeness
/// tests compare every scheme's delivered set against this.
pub fn brute_force<'a, I>(filters: I, doc: &Document, semantics: MatchSemantics) -> Vec<FilterId>
where
    I: IntoIterator<Item = &'a Filter>,
{
    let mut out: Vec<FilterId> = filters
        .into_iter()
        .filter(|f| semantics.matches(f, doc))
        .map(Filter::id)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    fn d(terms: &[u32]) -> Document {
        Document::from_occurrences(0, terms.iter().map(|&t| TermId(t)))
    }

    fn boolean_index(filters: &[Filter]) -> InvertedIndex {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for fl in filters {
            idx.insert(fl.clone());
        }
        idx
    }

    #[test]
    fn sift_equals_brute_force_boolean() {
        let filters = vec![f(1, &[1, 2]), f(2, &[3]), f(3, &[2, 4]), f(4, &[9])];
        let idx = boolean_index(&filters);
        let doc = d(&[2, 3, 7]);
        let got = idx.match_document(&doc);
        assert_eq!(
            got.matched,
            brute_force(&filters, &doc, MatchSemantics::Boolean)
        );
        assert_eq!(got.lists_retrieved, 2); // terms 2 and 3 have lists
        assert_eq!(got.postings_scanned, 3); // f1,f3 under 2; f2 under 3
    }

    /// A term-rich boolean document retrieves more than [`UNION_MAX_LISTS`]
    /// posting lists, which switches the kernel from the galloping block
    /// union to the concat-and-bitmap-dedup path — the two must produce
    /// the same canonical match set. The filters interleave their ids
    /// across terms and share terms (cross-list duplicates), so dedup and
    /// ordering are both load-bearing here.
    #[test]
    fn sift_term_rich_boolean_takes_the_concat_path_and_stays_exact() {
        let doc_terms: Vec<u32> = (1..=10).collect();
        assert!(doc_terms.len() > UNION_MAX_LISTS);
        // Filter k subscribes to terms k and k+1 (wrapping), so adjacent
        // posting lists overlap and every id appears in two lists.
        let filters: Vec<Filter> = (0..30u64)
            .map(|k| f(k, &[(k % 10 + 1) as u32, ((k + 1) % 10 + 1) as u32]))
            .collect();
        let idx = boolean_index(&filters);
        let doc = d(&doc_terms);
        let got = idx.match_document(&doc);
        assert_eq!(
            got.matched,
            brute_force(&filters, &doc, MatchSemantics::Boolean)
        );
        assert_eq!(got.lists_retrieved, 10);
        assert_eq!(got.postings_scanned, 60); // 30 filters × 2 entries
    }

    #[test]
    fn sift_equals_brute_force_threshold() {
        let sem = MatchSemantics::similarity_threshold(0.6);
        let filters = vec![f(1, &[1, 2, 3]), f(2, &[1, 9]), f(3, &[2])];
        let mut idx = InvertedIndex::new(sem);
        for fl in &filters {
            idx.insert(fl.clone());
        }
        let doc = d(&[1, 2, 5]);
        assert_eq!(
            idx.match_document(&doc).matched,
            brute_force(&filters, &doc, sem)
        );
    }

    #[test]
    fn match_term_returns_exactly_the_posting() {
        let filters = vec![f(1, &[1, 2]), f(2, &[2]), f(3, &[3])];
        let idx = boolean_index(&filters);
        let doc = d(&[2]);
        let got = idx.match_term(&doc, TermId(2));
        assert_eq!(got.matched, vec![FilterId(1), FilterId(2)]);
        assert_eq!(got.lists_retrieved, 1);
        assert_eq!(got.postings_scanned, 2);
    }

    #[test]
    fn match_term_threshold_checks_bodies() {
        let sem = MatchSemantics::similarity_threshold(1.0);
        let mut idx = InvertedIndex::new(sem);
        idx.insert(f(1, &[1, 2])); // needs both terms
        idx.insert(f(2, &[1]));
        let doc = d(&[1, 5]);
        let got = idx.match_term(&doc, TermId(1));
        assert_eq!(got.matched, vec![FilterId(2)]);
        assert_eq!(got.postings_scanned, 2);
    }

    #[test]
    fn union_of_per_term_matches_equals_sift() {
        let filters = vec![f(1, &[1, 2]), f(2, &[2, 3]), f(3, &[4]), f(4, &[1, 4])];
        let idx = boolean_index(&filters);
        let doc = d(&[1, 2, 4]);
        let mut union: Vec<FilterId> = doc
            .terms()
            .iter()
            .flat_map(|&t| idx.match_term(&doc, t).matched)
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(union, idx.match_document(&doc).matched);
    }

    #[test]
    fn chunked_term_scans_sum_to_the_sift_outcome() {
        // The match-lane contract: disjoint chunks of the document's terms,
        // each scanned with `match_terms_into`, must sum to the exact
        // counters of the one-shot SIFT kernel — and the concatenated
        // matches, canonicalized once, must be the same set.
        let filters = vec![
            f(1, &[1, 2]),
            f(2, &[2, 3]),
            f(3, &[4]),
            f(4, &[1, 4]),
            f(5, &[9]),
        ];
        let idx = boolean_index(&filters);
        let doc = d(&[1, 2, 4, 7]);
        let whole = idx.match_document(&doc);
        for chunk in 1..=4 {
            let mut sum = MatchOutcome::default();
            for c in doc.terms().chunks(chunk) {
                idx.match_terms_into(&doc, c, &mut sum);
            }
            assert_eq!(sum.lists_retrieved, whole.lists_retrieved, "chunk {chunk}");
            assert_eq!(
                sum.postings_scanned, whole.postings_scanned,
                "chunk {chunk}"
            );
            MatchScratch::new().sort_dedup(&mut sum.matched);
            assert_eq!(sum.matched, whole.matched, "chunk {chunk}");
        }
    }

    #[test]
    fn insert_for_term_builds_single_posting() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        idx.insert_for_term(f(1, &[1, 2]), TermId(1));
        assert_eq!(idx.posting_len(TermId(1)), 1);
        assert_eq!(idx.posting_len(TermId(2)), 0);
        assert!(idx.filter(FilterId(1)).is_some());
    }

    #[test]
    fn remove_cleans_postings() {
        let mut idx = boolean_index(&[f(1, &[1, 2]), f(2, &[2])]);
        assert!(idx.remove(FilterId(1)));
        assert!(!idx.remove(FilterId(1)));
        assert_eq!(idx.posting_len(TermId(1)), 0);
        assert_eq!(idx.posting_len(TermId(2)), 1);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.total_postings(), 1);
    }

    #[test]
    fn remove_term_posting_keeps_other_postings() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        let fl = f(1, &[1, 2]);
        idx.insert_for_term(fl.clone(), TermId(1));
        idx.insert_for_term(fl, TermId(2));
        assert!(idx.remove_term_posting(FilterId(1), TermId(1)));
        assert!(!idx.remove_term_posting(FilterId(1), TermId(1)));
        assert_eq!(idx.posting_len(TermId(1)), 0);
        assert_eq!(idx.posting_len(TermId(2)), 1);
        assert!(idx.filter(FilterId(1)).is_some(), "body still referenced");
        assert!(idx.remove_term_posting(FilterId(1), TermId(2)));
        assert!(
            idx.filter(FilterId(1)).is_none(),
            "body dropped with last posting"
        );
    }

    #[test]
    fn empty_index_matches_nothing() {
        let idx = InvertedIndex::new(MatchSemantics::Boolean);
        let doc = d(&[1, 2, 3]);
        let got = idx.match_document(&doc);
        assert!(got.matched.is_empty());
        assert_eq!(got.lists_retrieved, 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn heavy_unregister_churn_leaves_no_drained_terms() {
        // Regression guard: `remove` and `remove_term_posting` must prune a
        // term's posting entry (and the filter's refcount slot) the moment
        // its list drains, or a long-lived node leaks one empty list per
        // term it ever served and `terms()` reports ghosts to the router.
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for round in 0u64..50 {
            for id in 0u64..40 {
                let fid = round * 40 + id;
                let terms = [(fid % 17) as u32, (fid % 23) as u32 + 17];
                idx.insert(f(fid, &terms));
            }
            // Drain via both removal paths.
            for id in 0u64..40 {
                let fid = round * 40 + id;
                if fid % 2 == 0 {
                    assert!(idx.remove(FilterId(fid)));
                } else {
                    let body = idx.filter(FilterId(fid)).cloned().expect("stored");
                    for &t in body.terms() {
                        assert!(idx.remove_term_posting(FilterId(fid), t));
                    }
                }
            }
            assert!(idx.is_empty(), "round {round}: filters must drain");
            assert_eq!(
                idx.terms().count(),
                0,
                "round {round}: drained terms must be pruned"
            );
            assert_eq!(idx.total_postings(), 0);
        }
    }

    #[test]
    fn estimated_bytes_covers_the_blocked_posting_layout() {
        // 200 single-term filters under one term: two 1072-byte posting
        // blocks (see the posting-list fixture test). The index figure
        // must charge at least those blocks plus every stored body — the
        // block overhead of the layout may not be hidden — and stay a
        // sane multiple of the true payload.
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for id in 0..200u64 {
            idx.insert(f(id, &[1]));
        }
        let block_bytes = idx
            .terms()
            .map(|t| idx.posting(t).map_or(0, PostingList::estimated_bytes))
            .sum::<usize>();
        assert_eq!(block_bytes, 2 * 1072);
        let body_bytes = 200 * std::mem::size_of::<Filter>();
        assert!(idx.estimated_bytes() >= block_bytes + body_bytes);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        idx.insert(f(1, &[1]));
        idx.insert(f(1, &[1]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.posting_len(TermId(1)), 1);
    }
}
