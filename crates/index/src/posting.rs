//! Posting lists.

use crate::blocks::{BlockStore, PostingBlock};
use move_types::FilterId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The posting list of one term: the sorted ids of every filter containing
/// that term. "The set, typically implemented as a posting list, maintains
/// all documents containing the term" (paper §II) — here the indexed objects
/// are filters.
///
/// Ids live in fixed-size blocks with summary headers (see
/// [`crate::blocks`]): iteration order, idempotence and return values are
/// exactly those of the flat sorted-`Vec` layout this replaced — the
/// property suite in `tests/` pins the two against each other — while
/// snapshots share untouched blocks by `Arc` and the match kernels prune
/// on block summaries.
///
/// # Examples
///
/// ```
/// use move_index::PostingList;
/// use move_types::FilterId;
///
/// let mut pl = PostingList::new();
/// pl.insert(FilterId(9));
/// pl.insert(FilterId(3));
/// pl.insert(FilterId(9)); // idempotent
/// let ids: Vec<FilterId> = pl.iter().collect();
/// assert_eq!(ids, vec![FilterId(3), FilterId(9)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    store: BlockStore,
}

impl PostingList {
    /// Creates an empty posting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a filter id (idempotent); returns whether the id was newly
    /// added — the signal the index's per-filter posting refcount runs on.
    /// Costs one block copy-on-write and at most one ≤ block-size memmove.
    pub fn insert(&mut self, id: FilterId) -> bool {
        self.store.insert(id)
    }

    /// Wraps an already sorted, deduplicated id vector without re-sorting.
    /// The bulk construction paths go through
    /// [`PostingList::extend_sorted`]; this remains as a test fixture.
    #[cfg(test)]
    pub(crate) fn from_sorted(ids: Vec<FilterId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let mut pl = Self::new();
        pl.store.extend_sorted(&ids);
        pl
    }

    /// Merges a sorted, deduplicated batch of ids in one pass; returns how
    /// many were newly added.
    ///
    /// Per-id [`PostingList::insert`] pays a block copy-on-write for every
    /// id, so bulk registration (index construction, journal replay) over
    /// `k` ids would copy hot blocks `k` times. This path merges the batch
    /// into the blocks it overlaps and rebuilds only that span — blocks
    /// outside it keep their `Arc`, so snapshot sharing survives the merge.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `batch` is strictly sorted.
    pub fn extend_sorted(&mut self, batch: &[FilterId]) -> usize {
        self.store.extend_sorted(batch)
    }

    /// Approximate heap footprint of this list in bytes — block payloads,
    /// `Arc` headers and the block-pointer vector — the control-plane
    /// accounting `bench_control` reports as bytes/filter.
    pub fn estimated_bytes(&self) -> usize {
        self.store.estimated_bytes()
    }

    /// Removes a filter id; returns whether it was present. A block
    /// drained by the removal is pruned immediately.
    pub fn remove(&mut self, id: FilterId) -> bool {
        self.store.remove(id)
    }

    /// Whether the list contains `id` — a block-summary probe plus one
    /// in-block binary search.
    pub fn contains(&self, id: FilterId) -> bool {
        self.store.contains(id)
    }

    /// The sorted filter ids, in ascending order across blocks.
    pub fn iter(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.store.iter()
    }

    /// The list's blocks, ascending and non-overlapping — the unit the
    /// match kernels scan, skip and bulk-copy by summary.
    pub fn blocks(&self) -> &[Arc<PostingBlock>] {
        self.store.blocks()
    }

    /// Internal handle for the block-level kernels in [`crate::blocks`].
    pub(crate) fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

impl PartialEq for PostingList {
    /// Logical equality: same ids in the same order. Block boundaries are
    /// a storage artifact (they depend on insertion history) and do not
    /// participate.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for PostingList {}

impl Serialize for PostingList {
    /// Serializes as the flat sorted id array — the wire format is
    /// layout-independent, so snapshots taken under the flat layout and
    /// the blocked layout are interchangeable.
    fn to_value(&self) -> serde::Value {
        self.iter().collect::<Vec<FilterId>>().to_value()
    }
}

impl Deserialize for PostingList {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let mut ids = Vec::<FilterId>::from_value(v)?;
        ids.sort_unstable();
        ids.dedup();
        let mut pl = Self::new();
        pl.store.extend_sorted(&ids);
        Ok(pl)
    }
}

impl FromIterator<FilterId> for PostingList {
    fn from_iter<T: IntoIterator<Item = FilterId>>(iter: T) -> Self {
        let mut ids: Vec<FilterId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut pl = Self::new();
        pl.store.extend_sorted(&ids);
        pl
    }
}

impl Extend<FilterId> for PostingList {
    fn extend<T: IntoIterator<Item = FilterId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(pl: &PostingList) -> Vec<FilterId> {
        pl.iter().collect()
    }

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut pl = PostingList::new();
        for raw in [5u64, 1, 3, 5, 1] {
            pl.insert(FilterId(raw));
        }
        assert_eq!(collected(&pl), vec![FilterId(1), FilterId(3), FilterId(5)]);
        assert_eq!(pl.len(), 3);
    }

    #[test]
    fn remove_reports_presence() {
        let mut pl: PostingList = [FilterId(1), FilterId(2)].into_iter().collect();
        assert!(pl.remove(FilterId(1)));
        assert!(!pl.remove(FilterId(1)));
        assert!(!pl.contains(FilterId(1)));
        assert!(pl.contains(FilterId(2)));
    }

    #[test]
    fn from_iterator_dedupes() {
        let pl: PostingList = [FilterId(2), FilterId(2), FilterId(0)]
            .into_iter()
            .collect();
        assert_eq!(collected(&pl), vec![FilterId(0), FilterId(2)]);
    }

    #[test]
    fn empty_behaviour() {
        let pl = PostingList::new();
        assert!(pl.is_empty());
        assert!(!pl.contains(FilterId(0)));
    }

    #[test]
    fn extend_sorted_equals_repeated_insert() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..200 {
            let base_len = rng.gen_range(0..300);
            let batch_len = rng.gen_range(0..300);
            let mut base: Vec<FilterId> = (0..base_len)
                .map(|_| FilterId(rng.gen_range(0..600u64)))
                .collect();
            base.sort_unstable();
            base.dedup();
            let mut batch: Vec<FilterId> = (0..batch_len)
                .map(|_| FilterId(rng.gen_range(0..600u64)))
                .collect();
            batch.sort_unstable();
            batch.dedup();

            let mut merged = PostingList::from_sorted(base.clone());
            let mut oracle = PostingList::from_sorted(base);
            let added = merged.extend_sorted(&batch);
            let mut oracle_added = 0;
            for &id in &batch {
                if oracle.insert(id) {
                    oracle_added += 1;
                }
            }
            assert_eq!(merged, oracle, "case {case} diverged");
            assert_eq!(added, oracle_added, "case {case} counted wrong");
        }
    }

    #[test]
    fn extend_sorted_append_and_noop_paths() {
        let mut pl = PostingList::from_sorted(vec![FilterId(1), FilterId(2)]);
        // Pure append.
        assert_eq!(pl.extend_sorted(&[FilterId(5), FilterId(9)]), 2);
        // All duplicates.
        assert_eq!(pl.extend_sorted(&[FilterId(1), FilterId(9)]), 0);
        // Empty batch.
        assert_eq!(pl.extend_sorted(&[]), 0);
        assert_eq!(
            collected(&pl),
            vec![FilterId(1), FilterId(2), FilterId(5), FilterId(9)]
        );
    }

    #[test]
    fn serde_round_trips_across_layout() {
        let pl: PostingList = (0..300u64).map(|i| FilterId(i * 7)).collect();
        let json = serde_json::to_string(&pl).expect("serialize");
        let back: PostingList = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(pl, back);
        // The wire format is the flat id list, not the block structure.
        let flat: Vec<FilterId> = serde_json::from_str(&json).expect("flat decode");
        assert_eq!(flat, collected(&pl));
    }

    #[test]
    fn estimated_bytes_grows_with_blocks() {
        let small: PostingList = (0..10u64).map(FilterId).collect();
        let large: PostingList = (0..2000u64).map(FilterId).collect();
        assert!(small.estimated_bytes() > 0);
        assert!(large.estimated_bytes() > small.estimated_bytes());
    }

    #[test]
    fn estimated_bytes_matches_the_hand_computed_fixture() {
        // Hand computation, independent of the accounting code: a block is
        // its repr(C) struct — min (8) + max (8) + len (4, padded to 8) +
        // 128 × 8-byte ids = 1048 bytes — plus a 16-byte `Arc` header
        // (strong + weak counts) and the list's 8-byte pointer to it:
        // 1072 bytes per block. 300 ids fill ⌈300 / 128⌉ = 3 blocks.
        let pl: PostingList = (0..300u64).map(FilterId).collect();
        assert_eq!(pl.blocks().len(), 3);
        assert_eq!(pl.estimated_bytes(), 3 * 1072);
        // One id still costs a whole block — the fixed-block overhead the
        // accounting must not hide.
        let one: PostingList = [FilterId(7)].into_iter().collect();
        assert_eq!(one.estimated_bytes(), 1072);
    }
}
