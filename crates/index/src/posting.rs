//! Posting lists.

use move_types::FilterId;
use serde::{Deserialize, Serialize};

/// The posting list of one term: the sorted ids of every filter containing
/// that term. "The set, typically implemented as a posting list, maintains
/// all documents containing the term" (paper §II) — here the indexed objects
/// are filters.
///
/// # Examples
///
/// ```
/// use move_index::PostingList;
/// use move_types::FilterId;
///
/// let mut pl = PostingList::new();
/// pl.insert(FilterId(9));
/// pl.insert(FilterId(3));
/// pl.insert(FilterId(9)); // idempotent
/// assert_eq!(pl.ids(), &[FilterId(3), FilterId(9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    ids: Vec<FilterId>,
}

impl PostingList {
    /// Creates an empty posting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a filter id (idempotent); returns whether the id was newly
    /// added — the signal the index's per-filter posting refcount runs on.
    pub fn insert(&mut self, id: FilterId) -> bool {
        match self.ids.binary_search(&id) {
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
            Ok(_) => false,
        }
    }

    /// Wraps an already sorted, deduplicated id vector without re-sorting —
    /// the bulk [`InvertedIndex::build_from`](crate::InvertedIndex::build_from)
    /// construction path.
    pub(crate) fn from_sorted(ids: Vec<FilterId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        Self { ids }
    }

    /// Removes a filter id; returns whether it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the list contains `id`.
    pub fn contains(&self, id: FilterId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// The sorted filter ids.
    pub fn ids(&self) -> &[FilterId] {
        &self.ids
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl FromIterator<FilterId> for PostingList {
    fn from_iter<T: IntoIterator<Item = FilterId>>(iter: T) -> Self {
        let mut ids: Vec<FilterId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }
}

impl Extend<FilterId> for PostingList {
    fn extend<T: IntoIterator<Item = FilterId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut pl = PostingList::new();
        for raw in [5u64, 1, 3, 5, 1] {
            pl.insert(FilterId(raw));
        }
        assert_eq!(pl.ids(), &[FilterId(1), FilterId(3), FilterId(5)]);
        assert_eq!(pl.len(), 3);
    }

    #[test]
    fn remove_reports_presence() {
        let mut pl: PostingList = [FilterId(1), FilterId(2)].into_iter().collect();
        assert!(pl.remove(FilterId(1)));
        assert!(!pl.remove(FilterId(1)));
        assert!(!pl.contains(FilterId(1)));
        assert!(pl.contains(FilterId(2)));
    }

    #[test]
    fn from_iterator_dedupes() {
        let pl: PostingList = [FilterId(2), FilterId(2), FilterId(0)]
            .into_iter()
            .collect();
        assert_eq!(pl.ids(), &[FilterId(0), FilterId(2)]);
    }

    #[test]
    fn empty_behaviour() {
        let pl = PostingList::new();
        assert!(pl.is_empty());
        assert!(!pl.contains(FilterId(0)));
    }
}
