//! Posting lists.

use move_types::FilterId;
use serde::{Deserialize, Serialize};

/// The posting list of one term: the sorted ids of every filter containing
/// that term. "The set, typically implemented as a posting list, maintains
/// all documents containing the term" (paper §II) — here the indexed objects
/// are filters.
///
/// # Examples
///
/// ```
/// use move_index::PostingList;
/// use move_types::FilterId;
///
/// let mut pl = PostingList::new();
/// pl.insert(FilterId(9));
/// pl.insert(FilterId(3));
/// pl.insert(FilterId(9)); // idempotent
/// assert_eq!(pl.ids(), &[FilterId(3), FilterId(9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    ids: Vec<FilterId>,
}

impl PostingList {
    /// Creates an empty posting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a filter id (idempotent); returns whether the id was newly
    /// added — the signal the index's per-filter posting refcount runs on.
    pub fn insert(&mut self, id: FilterId) -> bool {
        match self.ids.binary_search(&id) {
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
            Ok(_) => false,
        }
    }

    /// Wraps an already sorted, deduplicated id vector without re-sorting.
    /// The bulk construction paths go through
    /// [`PostingList::extend_sorted`]; this remains as a test fixture.
    #[cfg(test)]
    pub(crate) fn from_sorted(ids: Vec<FilterId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        Self { ids }
    }

    /// Merges a sorted, deduplicated batch of ids in one pass; returns how
    /// many were newly added.
    ///
    /// Per-id [`PostingList::insert`] pays an O(n) memmove for every id
    /// landing in the middle of a hot term's list, so bulk registration
    /// (index construction, journal replay) over `k` ids costs O(n·k).
    /// This path merges the two sorted runs back-to-front into the final
    /// allocation instead — O(n + k) and at most one reallocation.
    ///
    /// # Panics
    ///
    /// Debug builds assert that `batch` is strictly sorted.
    pub fn extend_sorted(&mut self, batch: &[FilterId]) -> usize {
        debug_assert!(
            batch.windows(2).all(|w| w[0] < w[1]),
            "batch must be sorted and deduplicated"
        );
        if batch.is_empty() {
            return 0;
        }
        if self.ids.is_empty() {
            self.ids.extend_from_slice(batch);
            return batch.len();
        }
        // Fast path: the batch appends strictly after the current tail —
        // the common case when ids are registered in ascending order.
        if let (Some(&tail), Some(&head)) = (self.ids.last(), batch.first()) {
            if tail < head {
                self.ids.extend_from_slice(batch);
                return batch.len();
            }
        }
        let fresh = batch.iter().filter(|id| !self.contains(**id)).count();
        if fresh == 0 {
            return 0;
        }
        let old_len = self.ids.len();
        self.ids.resize(old_len + fresh, FilterId(0));
        // Merge back-to-front so existing ids move at most once.
        let mut write = self.ids.len();
        let mut a = old_len; // existing run cursor (exclusive)
        let mut b = batch.len(); // batch cursor (exclusive)
        while b > 0 {
            write -= 1;
            if a > 0 && self.ids[a - 1] >= batch[b - 1] {
                if self.ids[a - 1] == batch[b - 1] {
                    b -= 1; // duplicate: keep the existing copy
                }
                a -= 1;
                self.ids[write] = self.ids[a];
            } else {
                b -= 1;
                self.ids[write] = batch[b];
            }
        }
        debug_assert!(self.ids.windows(2).all(|w| w[0] < w[1]));
        fresh
    }

    /// Approximate heap footprint of this list in bytes — the control-plane
    /// accounting `bench_control` reports as bytes/filter.
    pub fn estimated_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<FilterId>()
    }

    /// Removes a filter id; returns whether it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether the list contains `id`.
    pub fn contains(&self, id: FilterId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// The sorted filter ids.
    pub fn ids(&self) -> &[FilterId] {
        &self.ids
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl FromIterator<FilterId> for PostingList {
    fn from_iter<T: IntoIterator<Item = FilterId>>(iter: T) -> Self {
        let mut ids: Vec<FilterId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }
}

impl Extend<FilterId> for PostingList {
    fn extend<T: IntoIterator<Item = FilterId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut pl = PostingList::new();
        for raw in [5u64, 1, 3, 5, 1] {
            pl.insert(FilterId(raw));
        }
        assert_eq!(pl.ids(), &[FilterId(1), FilterId(3), FilterId(5)]);
        assert_eq!(pl.len(), 3);
    }

    #[test]
    fn remove_reports_presence() {
        let mut pl: PostingList = [FilterId(1), FilterId(2)].into_iter().collect();
        assert!(pl.remove(FilterId(1)));
        assert!(!pl.remove(FilterId(1)));
        assert!(!pl.contains(FilterId(1)));
        assert!(pl.contains(FilterId(2)));
    }

    #[test]
    fn from_iterator_dedupes() {
        let pl: PostingList = [FilterId(2), FilterId(2), FilterId(0)]
            .into_iter()
            .collect();
        assert_eq!(pl.ids(), &[FilterId(0), FilterId(2)]);
    }

    #[test]
    fn empty_behaviour() {
        let pl = PostingList::new();
        assert!(pl.is_empty());
        assert!(!pl.contains(FilterId(0)));
    }

    #[test]
    fn extend_sorted_equals_repeated_insert() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..200 {
            let base_len = rng.gen_range(0..30);
            let batch_len = rng.gen_range(0..30);
            let mut base: Vec<FilterId> = (0..base_len)
                .map(|_| FilterId(rng.gen_range(0..60u64)))
                .collect();
            base.sort_unstable();
            base.dedup();
            let mut batch: Vec<FilterId> = (0..batch_len)
                .map(|_| FilterId(rng.gen_range(0..60u64)))
                .collect();
            batch.sort_unstable();
            batch.dedup();

            let mut merged = PostingList::from_sorted(base.clone());
            let mut oracle = PostingList::from_sorted(base);
            let added = merged.extend_sorted(&batch);
            let mut oracle_added = 0;
            for &id in &batch {
                if oracle.insert(id) {
                    oracle_added += 1;
                }
            }
            assert_eq!(merged, oracle, "case {case} diverged");
            assert_eq!(added, oracle_added, "case {case} counted wrong");
        }
    }

    #[test]
    fn extend_sorted_append_and_noop_paths() {
        let mut pl = PostingList::from_sorted(vec![FilterId(1), FilterId(2)]);
        // Pure append.
        assert_eq!(pl.extend_sorted(&[FilterId(5), FilterId(9)]), 2);
        // All duplicates.
        assert_eq!(pl.extend_sorted(&[FilterId(1), FilterId(9)]), 0);
        // Empty batch.
        assert_eq!(pl.extend_sorted(&[]), 0);
        assert_eq!(
            pl.ids(),
            &[FilterId(1), FilterId(2), FilterId(5), FilterId(9)]
        );
    }
}
