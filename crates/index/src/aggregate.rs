//! Canonicalizing filter aggregation (DESIGN.md §12).
//!
//! A million near-duplicate subscriptions must not cost a million posting
//! entries. The [`FilterAggregator`] splits *subscriber identity* from
//! *predicate identity*: filters with the same semantics and sorted term
//! set (and the same θ for threshold semantics — θ is a system-wide
//! property of [`MatchSemantics`], so identical term sets under one
//! configured semantics are identical predicates) collapse onto one
//! canonical predicate. Posting entries are stored once under the
//! canonical id; a compressed [`FanoutTable`] maps each canonical back to
//! its subscribers, expanded only at delivery finalize.
//!
//! Canonical ids live in `FilterId` space: the first subscriber donates its
//! id when that id is not already serving as another live canonical, which
//! keeps all-unique workloads bit-identical to the unaggregated layout.
//! Collisions (a reused subscriber id whose value is already a canonical of
//! a *different* predicate) fall back to a synthetic id with the top bit
//! set ([`SYNTH_BIT`]).

use crate::fanout::FanoutTable;
use move_types::{CanonicalFilterId, Filter, FilterId, TermId};
use std::collections::HashMap;
use std::sync::Arc;

/// Top bit of a synthetic canonical id. Real subscriber ids with this bit
/// set are astronomically unlikely in practice (the workload generators
/// allocate densely from zero), and the aggregator checks for collisions
/// anyway before donating an id.
pub const SYNTH_BIT: u64 = 1 << 63;

/// Outcome of [`FilterAggregator::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// First subscriber of a new predicate: the canonical body must now be
    /// registered with the index layer.
    NewCanonical {
        /// The canonical filter body (canonical id + the shared term set).
        canonical: Arc<Filter>,
    },
    /// The predicate already had a canonical entry; only the fan-out set
    /// grew.
    Subscribed {
        /// The existing canonical's id.
        canonical: CanonicalFilterId,
    },
    /// The subscriber was already registered with this exact predicate —
    /// an idempotent no-op.
    AlreadyRegistered,
}

/// Outcome of [`FilterAggregator::unregister`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnregisterOutcome {
    /// The subscriber was not registered.
    NotRegistered,
    /// Other subscribers remain on the predicate; only the fan-out set
    /// shrank.
    Unsubscribed {
        /// The canonical the subscriber left.
        canonical: CanonicalFilterId,
    },
    /// Last subscriber gone: the canonical body must now be removed from
    /// the index layer.
    RemovedCanonical {
        /// The removed canonical's body (its terms drive index removal).
        canonical: Arc<Filter>,
    },
}

/// One live canonical predicate.
#[derive(Debug, Clone)]
struct CanonicalEntry {
    /// The canonical body: canonical id + the shared sorted term set.
    body: Arc<Filter>,
}

/// The canonicalizing aggregation layer one scheme (or engine) owns.
///
/// # Examples
///
/// ```
/// use move_index::{FilterAggregator, RegisterOutcome};
/// use move_types::{Filter, TermId};
///
/// let mut agg = FilterAggregator::new();
/// let a = Filter::new(1u64, [TermId(5), TermId(9)]);
/// let b = Filter::new(2u64, [TermId(9), TermId(5)]); // same predicate
/// assert!(matches!(agg.register(&a), RegisterOutcome::NewCanonical { .. }));
/// assert!(matches!(agg.register(&b), RegisterOutcome::Subscribed { .. }));
/// assert_eq!(agg.canonical_count(), 1);
/// assert_eq!(agg.subscriber_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FilterAggregator {
    /// Sorted term set → live canonical entry.
    by_terms: HashMap<Vec<TermId>, CanonicalEntry>,
    /// Subscriber → its canonical id.
    subscriptions: HashMap<FilterId, FilterId>,
    /// Canonical id → subscriber sets, shared with workers by `Arc`
    /// snapshot; mutations go through `Arc::make_mut`, so an outstanding
    /// snapshot keeps its pre-mutation view.
    fanout: Arc<FanoutTable>,
    /// Monotonic counter for synthetic canonical ids.
    next_synth: u64,
}

impl FilterAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `filter` as a subscription, collapsing it onto an existing
    /// canonical predicate when one matches.
    ///
    /// Re-registering a live subscriber id with the *same* predicate is an
    /// idempotent no-op; with a *different* predicate it is first
    /// unregistered (callers see that as a separate [`unregister`]
    /// beforehand — the aggregator itself refuses the dangling state).
    ///
    /// [`unregister`]: FilterAggregator::unregister
    pub fn register(&mut self, filter: &Filter) -> RegisterOutcome {
        if let Some(&canonical) = self.subscriptions.get(&filter.id()) {
            if let Some(entry) = self.by_terms.get(filter.terms()) {
                if entry.body.id() == canonical {
                    return RegisterOutcome::AlreadyRegistered;
                }
            }
            // Same subscriber id, new predicate: move the subscription.
            self.unregister(filter.id());
        }
        if let Some(entry) = self.by_terms.get(filter.terms()) {
            let canonical = entry.body.id();
            Arc::make_mut(&mut self.fanout).subscribe(canonical, filter.id());
            self.subscriptions.insert(filter.id(), canonical);
            return RegisterOutcome::Subscribed {
                canonical: canonical.into(),
            };
        }
        let canonical_id = self.allocate_canonical_id(filter.id());
        let body = Arc::new(Filter::new(canonical_id, filter.terms().iter().copied()));
        self.by_terms.insert(
            filter.terms().to_vec(),
            CanonicalEntry {
                body: Arc::clone(&body),
            },
        );
        Arc::make_mut(&mut self.fanout).subscribe(canonical_id, filter.id());
        self.subscriptions.insert(filter.id(), canonical_id);
        RegisterOutcome::NewCanonical { canonical: body }
    }

    /// Removes subscriber `id`, dropping its canonical when it was the last.
    pub fn unregister(&mut self, id: FilterId) -> UnregisterOutcome {
        let Some(canonical) = self.subscriptions.remove(&id) else {
            return UnregisterOutcome::NotRegistered;
        };
        Arc::make_mut(&mut self.fanout).unsubscribe(canonical, id);
        if self.fanout.get(canonical).is_some() {
            return UnregisterOutcome::Unsubscribed {
                canonical: canonical.into(),
            };
        }
        // Last subscriber gone: retire the canonical entry.
        let terms: Option<Vec<TermId>> = self
            .by_terms
            .iter()
            .find(|(_, e)| e.body.id() == canonical)
            .map(|(k, _)| k.clone());
        match terms.and_then(|k| self.by_terms.remove(&k)) {
            Some(entry) => UnregisterOutcome::RemovedCanonical {
                canonical: entry.body,
            },
            // Unreachable by construction (every subscription points at a
            // live entry), but a typed answer beats a panic in a control
            // plane.
            None => UnregisterOutcome::NotRegistered,
        }
    }

    /// The canonical id the first subscriber donates — or a synthetic id
    /// when that value already names a live canonical of another predicate.
    fn allocate_canonical_id(&mut self, first: FilterId) -> FilterId {
        let in_use = self.by_terms.values().any(|e| e.body.id() == first);
        if !in_use {
            return first;
        }
        loop {
            let candidate = FilterId(SYNTH_BIT | self.next_synth);
            self.next_synth += 1;
            let taken = self.by_terms.values().any(|e| e.body.id() == candidate);
            if !taken {
                return candidate;
            }
        }
    }

    /// The canonical a live subscriber is attached to.
    pub fn canonical_of(&self, subscriber: FilterId) -> Option<CanonicalFilterId> {
        self.subscriptions.get(&subscriber).map(|&c| c.into())
    }

    /// The canonical body for a live canonical id.
    pub fn canonical_body(&self, canonical: CanonicalFilterId) -> Option<&Arc<Filter>> {
        self.by_terms
            .values()
            .find(|e| e.body.id() == canonical.as_filter_id())
            .map(|e| &e.body)
    }

    /// A cheap shared snapshot of the canonical→subscribers table.
    pub fn fanout_snapshot(&self) -> Arc<FanoutTable> {
        Arc::clone(&self.fanout)
    }

    /// Expands matched canonical ids to subscriber ids, appending to `out`
    /// (identity fallback for ids without a table entry).
    pub fn expand_into(&self, matched: &[FilterId], out: &mut Vec<FilterId>) {
        self.fanout.expand_into(matched, out);
    }

    /// Number of live canonical predicates.
    pub fn canonical_count(&self) -> usize {
        self.by_terms.len()
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Live subscriber ids, in arbitrary order.
    pub fn subscribers(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.subscriptions.keys().copied()
    }

    /// Approximate heap footprint of the aggregation layer in bytes:
    /// canonical directory + subscription map + fan-out sets.
    pub fn estimated_bytes(&self) -> usize {
        let terms: usize = self
            .by_terms
            .keys()
            .map(|k| k.capacity() * std::mem::size_of::<TermId>())
            .sum();
        let directory = self.by_terms.capacity()
            * (std::mem::size_of::<Vec<TermId>>() + std::mem::size_of::<CanonicalEntry>());
        let subs = self.subscriptions.capacity() * 2 * std::mem::size_of::<FilterId>();
        terms + directory + subs + self.fanout.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(id: u64, terms: &[u32]) -> Filter {
        Filter::new(id, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn identical_predicates_share_one_canonical() {
        let mut agg = FilterAggregator::new();
        let out = agg.register(&filter(10, &[1, 2]));
        let RegisterOutcome::NewCanonical { canonical } = out else {
            panic!("first registration must mint a canonical");
        };
        assert_eq!(canonical.id(), FilterId(10), "first subscriber donates id");
        assert!(matches!(
            agg.register(&filter(11, &[2, 1])),
            RegisterOutcome::Subscribed { canonical } if canonical == CanonicalFilterId(10)
        ));
        assert!(matches!(
            agg.register(&filter(11, &[2, 1])),
            RegisterOutcome::AlreadyRegistered
        ));
        assert_eq!(agg.canonical_count(), 1);
        assert_eq!(agg.subscriber_count(), 2);
        let snap = agg.fanout_snapshot();
        let mut out = Vec::new();
        snap.expand_into(&[FilterId(10)], &mut out);
        assert_eq!(out, [FilterId(10), FilterId(11)]);
    }

    #[test]
    fn estimated_bytes_includes_the_fanout_table() {
        // The aggregation-layer figure the runtime reports as
        // `aggregation_bytes` must carry the fan-out table's own bytes —
        // a fan-out set growing under shared-predicate subscriptions has
        // to show up, or the control-plane accounting under-reports
        // exactly the structure aggregation adds.
        let mut agg = FilterAggregator::new();
        agg.register(&filter(1, &[7]));
        let lone = agg.estimated_bytes();
        assert!(lone >= agg.fanout_snapshot().estimated_bytes());
        for id in 2..200u64 {
            agg.register(&filter(id, &[7]));
        }
        let crowded = agg.estimated_bytes();
        let fanout = agg.fanout_snapshot().estimated_bytes();
        assert!(fanout > 0, "199 subscribers of one canonical need a set");
        assert!(
            crowded >= lone + fanout,
            "aggregate bytes ({crowded}) must grow by at least the fan-out \
             set's footprint ({fanout}) over the lone subscriber ({lone})"
        );
    }

    #[test]
    fn unregister_retires_canonical_on_last_subscriber() {
        let mut agg = FilterAggregator::new();
        agg.register(&filter(1, &[7]));
        agg.register(&filter(2, &[7]));
        assert!(matches!(
            agg.unregister(FilterId(1)),
            UnregisterOutcome::Unsubscribed { canonical } if canonical == CanonicalFilterId(1)
        ));
        let UnregisterOutcome::RemovedCanonical { canonical } = agg.unregister(FilterId(2)) else {
            panic!("last unsubscribe must retire the canonical");
        };
        assert_eq!(canonical.id(), FilterId(1));
        assert_eq!(canonical.terms(), &[TermId(7)]);
        assert!(matches!(
            agg.unregister(FilterId(2)),
            UnregisterOutcome::NotRegistered
        ));
        assert_eq!(agg.canonical_count(), 0);
        assert_eq!(agg.subscriber_count(), 0);
    }

    #[test]
    fn reused_canonical_id_falls_back_to_synthetic() {
        let mut agg = FilterAggregator::new();
        agg.register(&filter(5, &[1])); // canonical f5 for {1}
        agg.register(&filter(9, &[1])); // joins f5
        agg.unregister(FilterId(5)); // f5 the *subscriber* leaves; canonical f5 lives on via f9
        let out = agg.register(&filter(5, &[2])); // id 5 reused for a new predicate
        let RegisterOutcome::NewCanonical { canonical } = out else {
            panic!("new predicate must mint a canonical");
        };
        assert_eq!(
            canonical.id(),
            FilterId(SYNTH_BIT),
            "id 5 is a live canonical of another predicate, so synthetic"
        );
        let mut expanded = Vec::new();
        agg.expand_into(&[FilterId(5), FilterId(SYNTH_BIT)], &mut expanded);
        expanded.sort_unstable();
        assert_eq!(expanded, [FilterId(5), FilterId(9)]);
    }

    #[test]
    fn re_registering_with_new_predicate_moves_the_subscription() {
        let mut agg = FilterAggregator::new();
        agg.register(&filter(1, &[1]));
        agg.register(&filter(2, &[1]));
        // Subscriber 2 switches predicates: old canonical keeps subscriber 1.
        assert!(matches!(
            agg.register(&filter(2, &[3])),
            RegisterOutcome::NewCanonical { .. }
        ));
        assert_eq!(agg.canonical_count(), 2);
        assert_eq!(agg.subscriber_count(), 2);
        let mut out = Vec::new();
        agg.expand_into(&[FilterId(1)], &mut out);
        assert_eq!(out, [FilterId(1)]);
    }

    #[test]
    fn snapshot_is_isolated_from_later_churn() {
        let mut agg = FilterAggregator::new();
        agg.register(&filter(1, &[1]));
        let snap = agg.fanout_snapshot();
        agg.register(&filter(2, &[1]));
        let mut before = Vec::new();
        snap.expand_into(&[FilterId(1)], &mut before);
        assert_eq!(before, [FilterId(1)], "snapshot must not see later churn");
        let mut after = Vec::new();
        agg.expand_into(&[FilterId(1)], &mut after);
        assert_eq!(after, [FilterId(1), FilterId(2)]);
    }
}
