//! Vector-space-model scoring — the relevance extension (paper §III-A cites
//! the VSM of Berry et al. as the alternative to pure boolean matching).
//!
//! Filters and documents are embedded as tf–idf vectors over their terms;
//! relevance is cosine similarity. MOVE itself only needs "match / no
//! match", but ranking delivered documents per filter is the natural
//! downstream feature (Google-Alerts-style digests), so the scorer is part
//! of the public API and exercised by the examples.

use move_types::{Document, Filter, TermId};
use std::collections::HashMap;

/// Inverse-document-frequency statistics learned from a corpus sample.
///
/// # Examples
///
/// ```
/// use move_index::vsm::Idf;
/// use move_types::{Document, TermDictionary};
///
/// let mut dict = TermDictionary::new();
/// let docs = vec![
///     Document::from_words(0, ["rust", "news"], &mut dict),
///     Document::from_words(1, ["rust", "jobs"], &mut dict),
/// ];
/// let idf = Idf::from_corpus(&docs);
/// let rust = dict.id("rust").unwrap();
/// let jobs = dict.id("jobs").unwrap();
/// assert!(idf.weight(jobs) > idf.weight(rust)); // rarer ⇒ heavier
/// ```
#[derive(Debug, Clone, Default)]
pub struct Idf {
    docs: u64,
    df: HashMap<TermId, u64>,
}

impl Idf {
    /// Learns document frequencies from a corpus sample.
    pub fn from_corpus<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a Document>,
    {
        let mut out = Self::default();
        for d in docs {
            out.add_document(d);
        }
        out
    }

    /// Incorporates one more document into the statistics.
    pub fn add_document(&mut self, doc: &Document) {
        self.docs += 1;
        for &t in doc.terms() {
            *self.df.entry(t).or_insert(0) += 1;
        }
    }

    /// Number of documents observed.
    pub fn corpus_size(&self) -> u64 {
        self.docs
    }

    /// The smoothed idf weight `ln(1 + N / (1 + df))` of a term. Unseen
    /// terms get the maximum weight.
    pub fn weight(&self, term: TermId) -> f64 {
        let df = self.df.get(&term).copied().unwrap_or(0);
        (1.0 + self.docs as f64 / (1.0 + df as f64)).ln()
    }
}

/// Cosine similarity between a filter (boolean query vector, idf-weighted)
/// and a document (tf–idf vector), in `[0, 1]`.
///
/// Returns 0 for an empty filter or a disjoint pair.
pub fn cosine_score(filter: &Filter, doc: &Document, idf: &Idf) -> f64 {
    if filter.is_empty() || doc.distinct_terms() == 0 {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut f_norm = 0.0;
    for &t in filter.terms() {
        let w = idf.weight(t);
        f_norm += w * w;
        let tf = doc.term_count(t);
        if tf > 0 {
            dot += w * (1.0 + f64::from(tf).ln()) * w;
        }
    }
    if dot == 0.0 {
        return 0.0;
    }
    let mut d_norm = 0.0;
    for (t, tf) in doc.term_counts() {
        let w = (1.0 + f64::from(tf).ln()) * idf.weight(t);
        d_norm += w * w;
    }
    dot / (f_norm.sqrt() * d_norm.sqrt())
}

/// Ranks `docs` for one filter, best first, dropping zero scores.
pub fn rank<'a>(
    filter: &Filter,
    docs: impl IntoIterator<Item = &'a Document>,
    idf: &Idf,
) -> Vec<(&'a Document, f64)> {
    let mut scored: Vec<(&Document, f64)> = docs
        .into_iter()
        .map(|d| (d, cosine_score(filter, d, idf)))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, terms: &[(u32, u32)]) -> Document {
        Document::from_occurrences(
            id,
            terms
                .iter()
                .flat_map(|&(t, n)| std::iter::repeat_n(TermId(t), n as usize)),
        )
    }

    fn filter(terms: &[u32]) -> Filter {
        Filter::new(0, terms.iter().map(|&t| TermId(t)))
    }

    #[test]
    fn disjoint_scores_zero() {
        let idf = Idf::from_corpus(&[doc(0, &[(1, 1)])]);
        assert_eq!(cosine_score(&filter(&[2]), &doc(1, &[(1, 3)]), &idf), 0.0);
    }

    #[test]
    fn full_overlap_beats_partial() {
        let corpus = vec![doc(0, &[(1, 1), (2, 1)]), doc(1, &[(3, 1)])];
        let idf = Idf::from_corpus(&corpus);
        let f = filter(&[1, 2]);
        let full = cosine_score(&f, &doc(2, &[(1, 1), (2, 1)]), &idf);
        let partial = cosine_score(&f, &doc(3, &[(1, 1), (9, 1)]), &idf);
        assert!(full > partial);
        assert!(full <= 1.0 + 1e-9);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let corpus: Vec<Document> = (0..10)
            .map(|i| {
                if i == 0 {
                    doc(i, &[(1, 1), (2, 1)])
                } else {
                    doc(i, &[(1, 1)])
                }
            })
            .collect();
        let idf = Idf::from_corpus(&corpus);
        assert!(idf.weight(TermId(2)) > idf.weight(TermId(1)));
        assert!(idf.weight(TermId(99)) >= idf.weight(TermId(2)));
        assert_eq!(idf.corpus_size(), 10);
    }

    #[test]
    fn rank_orders_best_first_and_drops_zeroes() {
        let corpus = vec![doc(0, &[(1, 1)]), doc(1, &[(2, 1)])];
        let idf = Idf::from_corpus(&corpus);
        let f = filter(&[1]);
        let candidates = vec![
            doc(2, &[(1, 5)]),
            doc(3, &[(2, 1)]),
            doc(4, &[(1, 1), (2, 1)]),
        ];
        let ranked = rank(&f, &candidates, &idf);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn empty_filter_scores_zero() {
        let idf = Idf::default();
        assert_eq!(cosine_score(&filter(&[]), &doc(0, &[(1, 1)]), &idf), 0.0);
    }
}
