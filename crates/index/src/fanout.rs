//! Compressed subscriber fan-out sets.
//!
//! The control-plane aggregation layer (DESIGN.md §12) stores each
//! canonical predicate's posting entries once and keeps the mapping back to
//! its subscribers in a [`FanOutSet`] — a sorted-run/bitmap hybrid in the
//! style of a roaring bitmap. Subscriber ids are split into 64 Ki-wide
//! chunks keyed by the high bits; each chunk holds either a sorted array of
//! low 16-bit halves (sparse) or a dense 8 KiB bitmap (past
//! [`ARRAY_TO_BITMAP`] entries). Containers sit behind `Arc`s, so cloning a
//! whole set — or a whole [`FanoutTable`] — is O(chunks) pointer bumps, and
//! a mutation copies at most one ≤ 8 KiB container (`Arc::make_mut`). That
//! is what lets every worker hold a coherent snapshot of the global
//! fan-out table while the control plane churns it.

use move_types::FilterId;
use std::sync::Arc;

/// Entries per chunk at which a sorted array container is converted into a
/// dense bitmap. At 4096 × 2 bytes the array equals the 8 KiB bitmap, so
/// past this point the bitmap is strictly smaller and O(1) to update.
pub const ARRAY_TO_BITMAP: usize = 4096;

/// Number of `u64` words in a dense bitmap container (covers 65 536 ids).
const BITMAP_WORDS: usize = 1024;

/// One 64 Ki-id chunk of a fan-out set.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted low-16-bit halves of the member ids — the sparse shape.
    Array(Vec<u16>),
    /// Dense bitmap over the chunk — the shape past [`ARRAY_TO_BITMAP`].
    Bitmap(Box<[u64; BITMAP_WORDS]>),
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap(words) => words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
        }
    }

    /// Inserts `low`; returns whether it was newly added. Converts array →
    /// bitmap when the array outgrows [`ARRAY_TO_BITMAP`].
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() >= ARRAY_TO_BITMAP {
                        let mut words = Box::new([0u64; BITMAP_WORDS]);
                        for &x in v.iter() {
                            words[(x >> 6) as usize] |= 1u64 << (x & 63);
                        }
                        words[(low >> 6) as usize] |= 1u64 << (low & 63);
                        *self = Container::Bitmap(words);
                        true
                    } else {
                        v.insert(pos, low);
                        true
                    }
                }
            },
            Container::Bitmap(words) => {
                let word = &mut words[(low >> 6) as usize];
                let bit = 1u64 << (low & 63);
                let fresh = *word & bit == 0;
                *word |= bit;
                fresh
            }
        }
    }

    /// Removes `low`; returns whether it was present. Converts bitmap →
    /// array when membership falls back under half the threshold (hysteresis
    /// so a churning set does not thrash between shapes).
    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(words) => {
                let word = &mut words[(low >> 6) as usize];
                let bit = 1u64 << (low & 63);
                if *word & bit == 0 {
                    return false;
                }
                *word &= !bit;
                if self.len() < ARRAY_TO_BITMAP / 2 {
                    let mut v = Vec::with_capacity(self.len());
                    self.for_each(|x| v.push(x));
                    *self = Container::Array(v);
                }
                true
            }
        }
    }

    /// Calls `f` with every member low half, ascending.
    fn for_each(&self, mut f: impl FnMut(u16)) {
        match self {
            Container::Array(v) => {
                for &x in v {
                    f(x);
                }
            }
            Container::Bitmap(words) => {
                for (i, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        f(((i as u32) << 6 | bit) as u16);
                        w &= w - 1;
                    }
                }
            }
        }
    }

    fn estimated_bytes(&self) -> usize {
        match self {
            Container::Array(v) => v.capacity() * 2,
            Container::Bitmap(_) => BITMAP_WORDS * 8,
        }
    }
}

/// A compressed set of subscriber [`FilterId`]s.
///
/// # Examples
///
/// ```
/// use move_index::FanOutSet;
/// use move_types::FilterId;
///
/// let mut set = FanOutSet::new();
/// set.insert(FilterId(70_000));
/// set.insert(FilterId(3));
/// let mut out = Vec::new();
/// set.union_into(&mut out);
/// assert_eq!(out, [FilterId(3), FilterId(70_000)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanOutSet {
    /// `(chunk_high, container)` sorted by chunk key (`id >> 16`).
    chunks: Vec<(u64, Arc<Container>)>,
    /// Cached total membership, kept in lockstep by `insert`/`remove`.
    len: usize,
}

impl FanOutSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn split(id: FilterId) -> (u64, u16) {
        (id.0 >> 16, (id.0 & 0xFFFF) as u16)
    }

    /// Inserts a subscriber; returns whether it was newly added.
    pub fn insert(&mut self, id: FilterId) -> bool {
        let (high, low) = Self::split(id);
        let fresh = match self.chunks.binary_search_by_key(&high, |c| c.0) {
            Ok(pos) => Arc::make_mut(&mut self.chunks[pos].1).insert(low),
            Err(pos) => {
                self.chunks
                    .insert(pos, (high, Arc::new(Container::Array(vec![low]))));
                true
            }
        };
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes a subscriber; returns whether it was present.
    pub fn remove(&mut self, id: FilterId) -> bool {
        let (high, low) = Self::split(id);
        let Ok(pos) = self.chunks.binary_search_by_key(&high, |c| c.0) else {
            return false;
        };
        let container = Arc::make_mut(&mut self.chunks[pos].1);
        if !container.remove(low) {
            return false;
        }
        if container.len() == 0 {
            self.chunks.remove(pos);
        }
        self.len -= 1;
        true
    }

    /// Whether the set contains `id`.
    pub fn contains(&self, id: FilterId) -> bool {
        let (high, low) = Self::split(id);
        match self.chunks.binary_search_by_key(&high, |c| c.0) {
            Ok(pos) => self.chunks[pos].1.contains(low),
            Err(_) => false,
        }
    }

    /// Number of subscribers in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends every member to `out` in ascending order — the delivery
    /// finalize path's canonical-to-subscribers expansion.
    pub fn union_into(&self, out: &mut Vec<FilterId>) {
        out.reserve(self.len);
        for (high, container) in &self.chunks {
            let base = high << 16;
            container.for_each(|low| out.push(FilterId(base | low as u64)));
        }
    }

    /// The members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FilterId> + '_ {
        // Chunks are few; collecting per chunk keeps the iterator simple
        // without materializing the whole set at once.
        self.chunks.iter().flat_map(|(high, container)| {
            let base = high << 16;
            let mut v = Vec::with_capacity(container.len());
            container.for_each(|low| v.push(FilterId(base | low as u64)));
            v.into_iter()
        })
    }

    /// Approximate heap footprint in bytes (containers + chunk directory).
    pub fn estimated_bytes(&self) -> usize {
        let directory = self.chunks.capacity() * std::mem::size_of::<(u64, Arc<Container>)>();
        directory
            + self
                .chunks
                .iter()
                .map(|(_, c)| c.estimated_bytes())
                .sum::<usize>()
    }
}

/// The global canonical-to-subscribers table every worker snapshots.
///
/// Keys are canonical ids (in `FilterId` space); values are the compressed
/// subscriber sets. The table itself clones cheaply: the map is rebuilt but
/// every [`FanOutSet`] shares its containers until mutated.
#[derive(Debug, Clone, Default)]
pub struct FanoutTable {
    sets: std::collections::HashMap<FilterId, FanOutSet>,
}

impl FanoutTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `subscriber` to `canonical`'s fan-out set; returns whether the
    /// pair was newly added.
    pub fn subscribe(&mut self, canonical: FilterId, subscriber: FilterId) -> bool {
        self.sets.entry(canonical).or_default().insert(subscriber)
    }

    /// Removes `subscriber` from `canonical`'s fan-out set (dropping the
    /// entry when it drains); returns whether the pair was present.
    pub fn unsubscribe(&mut self, canonical: FilterId, subscriber: FilterId) -> bool {
        let Some(set) = self.sets.get_mut(&canonical) else {
            return false;
        };
        let removed = set.remove(subscriber);
        if set.is_empty() {
            self.sets.remove(&canonical);
        }
        removed
    }

    /// The fan-out set of `canonical`, if any subscriber is registered.
    pub fn get(&self, canonical: FilterId) -> Option<&FanOutSet> {
        self.sets.get(&canonical)
    }

    /// Expands matched canonical ids to subscriber ids, appending to `out`.
    ///
    /// A matched id with no table entry expands to itself — the identity
    /// fallback that keeps unaggregated flows (and replay against an older
    /// table) delivering exactly what they matched.
    pub fn expand_into(&self, matched: &[FilterId], out: &mut Vec<FilterId>) {
        for &c in matched {
            match self.sets.get(&c) {
                Some(set) => set.union_into(out),
                None => out.push(c),
            }
        }
    }

    /// Number of canonical entries.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Total subscribers across all canonical entries.
    pub fn subscribers(&self) -> usize {
        self.sets.values().map(FanOutSet::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let map = self.sets.capacity()
            * (std::mem::size_of::<FilterId>() + std::mem::size_of::<FanOutSet>());
        map + self
            .sets
            .values()
            .map(FanOutSet::estimated_bytes)
            .sum::<usize>()
    }

    /// Iterates `(canonical, fan-out set)` entries in arbitrary order.
    pub fn entries(&self) -> impl Iterator<Item = (FilterId, &FanOutSet)> + '_ {
        self.sets.iter().map(|(&c, s)| (c, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn set_matches_btreeset_under_random_churn() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut set = FanOutSet::new();
        let mut oracle: BTreeSet<FilterId> = BTreeSet::new();
        for _ in 0..20_000 {
            let id = FilterId(rng.gen_range(0..200_000u64));
            if rng.gen_range(0..3u32) == 0 {
                assert_eq!(set.remove(id), oracle.remove(&id));
            } else {
                assert_eq!(set.insert(id), oracle.insert(id));
            }
        }
        assert_eq!(set.len(), oracle.len());
        let mut got = Vec::new();
        set.union_into(&mut got);
        let want: Vec<FilterId> = oracle.iter().copied().collect();
        assert_eq!(got, want);
        assert_eq!(set.iter().collect::<Vec<_>>(), want);
        for probe in (0..200_000u64).step_by(997) {
            assert_eq!(
                set.contains(FilterId(probe)),
                oracle.contains(&FilterId(probe))
            );
        }
    }

    #[test]
    fn dense_chunk_converts_to_bitmap_and_back() {
        let mut set = FanOutSet::new();
        // One chunk, filled past the array threshold.
        for i in 0..(ARRAY_TO_BITMAP as u64 + 500) {
            set.insert(FilterId(i));
        }
        assert!(matches!(&*set.chunks[0].1, Container::Bitmap(_)));
        let bitmap_bytes = set.estimated_bytes();
        assert!(bitmap_bytes >= BITMAP_WORDS * 8);
        // Drain below half the threshold: hysteresis converts back.
        for i in 0..(ARRAY_TO_BITMAP as u64) {
            set.remove(FilterId(i));
        }
        assert!(matches!(&*set.chunks[0].1, Container::Array(_)));
        assert_eq!(set.len(), 500);
        let mut out = Vec::new();
        set.union_into(&mut out);
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], FilterId(ARRAY_TO_BITMAP as u64));
    }

    #[test]
    fn clone_shares_containers_until_mutated() {
        let mut a = FanOutSet::new();
        for i in 0..100u64 {
            a.insert(FilterId(i));
        }
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.chunks[0].1, &b.chunks[0].1));
        a.insert(FilterId(100));
        assert!(!Arc::ptr_eq(&a.chunks[0].1, &b.chunks[0].1));
        assert_eq!(b.len(), 100);
        assert_eq!(a.len(), 101);
    }

    #[test]
    fn table_expand_uses_identity_fallback() {
        let mut table = FanoutTable::new();
        table.subscribe(FilterId(1), FilterId(10));
        table.subscribe(FilterId(1), FilterId(11));
        let mut out = Vec::new();
        table.expand_into(&[FilterId(1), FilterId(7)], &mut out);
        assert_eq!(out, [FilterId(10), FilterId(11), FilterId(7)]);
    }

    #[test]
    fn table_unsubscribe_drops_drained_entries() {
        let mut table = FanoutTable::new();
        assert!(table.subscribe(FilterId(1), FilterId(10)));
        assert!(!table.subscribe(FilterId(1), FilterId(10)));
        assert!(table.unsubscribe(FilterId(1), FilterId(10)));
        assert!(!table.unsubscribe(FilterId(1), FilterId(10)));
        assert!(table.is_empty());
        assert_eq!(table.subscribers(), 0);
    }
}
