//! Inverted indexes and matching algorithms for MOVE.
//!
//! Every node of the cluster indexes its locally registered filters with an
//! inverted list (paper §II, "Overview of Inverted List"). Two match
//! algorithms run over it:
//!
//! * [`InvertedIndex::match_term`] — the home-node algorithm of the
//!   IL/MOVE schemes (§III-B): retrieve *only* the posting list of the term
//!   that routed the document here;
//! * [`InvertedIndex::match_document`] — the centralized SIFT algorithm
//!   (Yan & Garcia-Molina) used by the rendezvous scheme (§VI-A): retrieve
//!   the posting lists of *all* `|d|` document terms and accumulate hits.
//!
//! Both report the work they did ([`MatchOutcome`]: lists retrieved,
//! postings scanned) so the cost model can convert matching into virtual
//! latency. [`brute_force`] provides the oracle used by the completeness
//! tests, and [`vsm`] the tf–idf scoring of the vector-space-model
//! extension.
//!
//! # Examples
//!
//! ```
//! use move_index::InvertedIndex;
//! use move_types::{Document, Filter, MatchSemantics, TermDictionary};
//!
//! let mut dict = TermDictionary::new();
//! let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
//! idx.insert(Filter::from_words(1, ["rust", "async"], &mut dict));
//! let doc = Document::from_words(1, ["rust", "conference"], &mut dict);
//! let outcome = idx.match_document(&doc);
//! assert_eq!(outcome.matched.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
mod blocks;
pub mod fanout;
mod index;
mod posting;
pub mod vsm;

pub use aggregate::{FilterAggregator, RegisterOutcome, UnregisterOutcome};
pub use blocks::{PostingBlock, BLOCK_CAP};
pub use fanout::{FanOutSet, FanoutTable};
pub use index::{brute_force, deep_clone_count, InvertedIndex, MatchOutcome, MatchScratch};
pub use posting::PostingList;
