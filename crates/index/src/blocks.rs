//! Block-organized posting storage.
//!
//! A [`PostingList`](crate::PostingList) stores its sorted filter ids in
//! contiguous fixed-size blocks of [`BLOCK_CAP`] entries. Each block opens
//! with a summary header — minimum id, maximum id, entry count — laid out
//! (`#[repr(C)]`) ahead of the id array, so a skip/prune decision touches
//! only the block's first cache line and never faults the payload in.
//!
//! The layout buys three things the flat `Vec<FilterId>` could not:
//!
//! * **Skip-pruning:** block summaries let the match kernels bulk-copy or
//!   skip whole blocks (see [`union_lists_into`]) instead of walking every
//!   id — the galloping block-wise union of the multi-term boolean path.
//! * **O(blocks) snapshot sharing:** blocks live behind `Arc`s, so a deep
//!   clone of a posting list is a vector of `Arc` bumps; a mutation copies
//!   only the block it lands in (copy-on-write via [`Arc::make_mut`]).
//!   This composes with the existing CoW `Arc<InvertedIndex>` shard
//!   convention: an allocation snapshot shares every untouched block with
//!   its parent.
//! * **Bounded insert cost:** a sorted insert memmoves at most one block
//!   (≤ [`BLOCK_CAP`] ids), not the whole list — the flat layout's O(n)
//!   middle-insert was the dominant registration cost on hot terms.

use move_types::FilterId;
use std::sync::Arc;

/// Number of filter ids per posting block. 128 × 8-byte ids = 1 KiB of
/// payload — a couple of pages of useful scan work per summary probe,
/// small enough that a copy-on-write of one block stays cheap.
pub const BLOCK_CAP: usize = 128;

/// Approximate per-`Arc` heap overhead (strong + weak counts) charged by
/// the byte accounting, [`PostingBlock::estimated_bytes`].
const ARC_HEADER_BYTES: usize = 2 * std::mem::size_of::<usize>();

/// One fixed-capacity run of sorted, deduplicated filter ids with an
/// inline summary header.
///
/// Invariants (upheld by every constructor and mutation in this module):
/// `len ≥ 1` for any block stored in a list (empty blocks are pruned),
/// `ids[..len]` is strictly ascending, `min == ids[0]`,
/// `max == ids[len - 1]`.
#[derive(Debug, Clone)]
#[repr(C)]
pub struct PostingBlock {
    /// Smallest id in the block — summary header, first cache line.
    min: FilterId,
    /// Largest id in the block — summary header, first cache line.
    max: FilterId,
    /// Number of live ids in `ids`.
    len: u32,
    /// The id payload; only `ids[..len]` is meaningful.
    ids: [FilterId; BLOCK_CAP],
}

impl Default for PostingBlock {
    fn default() -> Self {
        Self {
            min: FilterId(0),
            max: FilterId(0),
            len: 0,
            ids: [FilterId(0); BLOCK_CAP],
        }
    }
}

impl PostingBlock {
    /// Builds a block from a strictly ascending run of at most
    /// [`BLOCK_CAP`] ids.
    fn from_run(run: &[FilterId]) -> Self {
        debug_assert!(!run.is_empty() && run.len() <= BLOCK_CAP);
        debug_assert!(run.windows(2).all(|w| w[0] < w[1]));
        let mut ids = [FilterId(0); BLOCK_CAP];
        ids[..run.len()].copy_from_slice(run);
        Self {
            min: run[0],
            max: run[run.len() - 1],
            len: run.len() as u32,
            ids,
        }
    }

    /// Smallest id in the block (summary header).
    #[inline]
    pub fn min(&self) -> FilterId {
        self.min
    }

    /// Largest id in the block (summary header).
    #[inline]
    pub fn max(&self) -> FilterId {
        self.max
    }

    /// Number of ids in the block (summary header).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the block holds no ids (never true for a block stored in a
    /// list — empty blocks are pruned on removal).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block's sorted ids.
    #[inline]
    pub fn as_slice(&self) -> &[FilterId] {
        &self.ids[..self.len as usize]
    }

    /// Whether the block is at capacity.
    #[inline]
    fn is_full(&self) -> bool {
        self.len as usize == BLOCK_CAP
    }

    /// Refreshes the summary header after a payload mutation.
    fn refresh_summary(&mut self) {
        if self.len > 0 {
            self.min = self.ids[0];
            self.max = self.ids[self.len as usize - 1];
        }
    }

    /// Inserts `id` at sorted position `pos` (caller found it absent).
    fn insert_at(&mut self, pos: usize, id: FilterId) {
        debug_assert!(!self.is_full());
        let len = self.len as usize;
        self.ids.copy_within(pos..len, pos + 1);
        self.ids[pos] = id;
        self.len += 1;
        self.refresh_summary();
    }

    /// Removes the id at sorted position `pos`.
    fn remove_at(&mut self, pos: usize) {
        let len = self.len as usize;
        self.ids.copy_within(pos + 1..len, pos);
        self.len -= 1;
        self.refresh_summary();
    }
}

/// The block store behind one posting list: a vector of shared blocks,
/// strictly ordered (`blocks[i].max < blocks[i + 1].min`), none empty.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockStore {
    blocks: Vec<Arc<PostingBlock>>,
    /// Total ids across all blocks — kept inline so `len()` is O(1).
    len: usize,
}

impl BlockStore {
    /// Index of the first block whose `max ≥ id` — the only block that can
    /// contain `id`, or `blocks.len()` if `id` is past every block.
    #[inline]
    fn candidate(&self, id: FilterId) -> usize {
        self.blocks.partition_point(|b| b.max < id)
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn blocks(&self) -> &[Arc<PostingBlock>] {
        &self.blocks
    }

    pub(crate) fn contains(&self, id: FilterId) -> bool {
        let pos = self.candidate(id);
        match self.blocks.get(pos) {
            Some(b) => id >= b.min && b.as_slice().binary_search(&id).is_ok(),
            None => false,
        }
    }

    /// Sorted insert; returns whether `id` was newly added.
    pub(crate) fn insert(&mut self, id: FilterId) -> bool {
        let pos = self.candidate(id);
        let Some(block) = self.blocks.get(pos) else {
            // Past every block: extend the last block, or open a new one.
            match self.blocks.last_mut() {
                Some(last) if !last.is_full() => {
                    let b = Arc::make_mut(last);
                    let len = b.len as usize;
                    b.ids[len] = id;
                    b.len += 1;
                    b.refresh_summary();
                }
                _ => self.blocks.push(Arc::new(PostingBlock::from_run(&[id]))),
            }
            self.len += 1;
            return true;
        };
        let Err(slot) = block.as_slice().binary_search(&id) else {
            return false;
        };
        if block.is_full() {
            // Split the full block into two halves, then insert into the
            // half the id belongs to — the classic B-tree leaf split.
            let (lo, hi) = {
                let ids = block.as_slice();
                let mid = ids.len() / 2;
                (
                    PostingBlock::from_run(&ids[..mid]),
                    PostingBlock::from_run(&ids[mid..]),
                )
            };
            self.blocks[pos] = Arc::new(lo);
            self.blocks.insert(pos + 1, Arc::new(hi));
            let target = if id < self.blocks[pos + 1].min {
                pos
            } else {
                pos + 1
            };
            let b = Arc::make_mut(&mut self.blocks[target]);
            match b.as_slice().binary_search(&id) {
                Err(s) => b.insert_at(s, id),
                Ok(_) => return false, // unreachable: absence checked above
            }
        } else {
            Arc::make_mut(&mut self.blocks[pos]).insert_at(slot, id);
        }
        self.len += 1;
        true
    }

    /// Sorted remove; returns whether `id` was present. A drained block is
    /// pruned from the store immediately.
    pub(crate) fn remove(&mut self, id: FilterId) -> bool {
        let pos = self.candidate(id);
        let Some(block) = self.blocks.get(pos) else {
            return false;
        };
        let Ok(slot) = block.as_slice().binary_search(&id) else {
            return false;
        };
        if block.len() == 1 {
            self.blocks.remove(pos); // empty-block pruning
        } else {
            Arc::make_mut(&mut self.blocks[pos]).remove_at(slot);
        }
        self.len -= 1;
        true
    }

    /// Merges a strictly ascending batch; returns how many ids were new.
    ///
    /// Only the blocks whose ranges overlap the batch are rebuilt; every
    /// block outside the overlap span keeps its `Arc`, so a bulk
    /// registration on a snapshot-shared list copies the touched span and
    /// nothing else.
    pub(crate) fn extend_sorted(&mut self, batch: &[FilterId]) -> usize {
        debug_assert!(
            batch.windows(2).all(|w| w[0] < w[1]),
            "batch must be sorted and deduplicated"
        );
        if batch.is_empty() {
            return 0;
        }
        let (Some(&first), Some(&last)) = (batch.first(), batch.last()) else {
            return 0;
        };
        // Fast path: the batch lands strictly after the current tail — the
        // common case when ids are registered in ascending order.
        if self.blocks.last().is_none_or(|b| b.max < first) {
            let mut rest = batch;
            if let Some(tail) = self.blocks.last_mut() {
                if !tail.is_full() {
                    let spare = BLOCK_CAP - tail.len();
                    let take = spare.min(rest.len());
                    let b = Arc::make_mut(tail);
                    let len = b.len as usize;
                    b.ids[len..len + take].copy_from_slice(&rest[..take]);
                    b.len += take as u32;
                    b.refresh_summary();
                    rest = &rest[take..];
                }
            }
            for run in rest.chunks(BLOCK_CAP) {
                self.blocks.push(Arc::new(PostingBlock::from_run(run)));
            }
            self.len += batch.len();
            return batch.len();
        }
        // General path: rebuild only the span of blocks the batch overlaps.
        // Blocks entirely below `first` or entirely above `last` are kept
        // by reference; every batch id falls between the span's fences by
        // construction, so the merged run replaces exactly `lo..hi`.
        let lo = self.blocks.partition_point(|b| b.max < first);
        let hi = self.blocks.partition_point(|b| b.min <= last);
        let mut existing: Vec<FilterId> =
            Vec::with_capacity(self.blocks[lo..hi].iter().map(|b| b.len()).sum::<usize>());
        for b in &self.blocks[lo..hi] {
            existing.extend_from_slice(b.as_slice());
        }
        let mut merged: Vec<FilterId> = Vec::with_capacity(existing.len() + batch.len());
        let mut fresh = 0usize;
        let (mut a, mut b) = (0usize, 0usize);
        while a < existing.len() || b < batch.len() {
            match (existing.get(a), batch.get(b)) {
                (Some(&x), Some(&y)) if x < y => {
                    merged.push(x);
                    a += 1;
                }
                (Some(&x), Some(&y)) if x == y => {
                    merged.push(x); // duplicate: keep the existing copy
                    a += 1;
                    b += 1;
                }
                (_, Some(&y)) => {
                    merged.push(y);
                    fresh += 1;
                    b += 1;
                }
                (Some(&x), None) => {
                    merged.push(x);
                    a += 1;
                }
                (None, None) => break,
            }
        }
        let rebuilt: Vec<Arc<PostingBlock>> = merged
            .chunks(BLOCK_CAP)
            .map(|run| Arc::new(PostingBlock::from_run(run)))
            .collect();
        self.blocks.splice(lo..hi, rebuilt);
        self.len += fresh;
        fresh
    }

    /// Iterates every id in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = FilterId> + '_ {
        self.blocks.iter().flat_map(|b| b.as_slice()).copied()
    }

    /// Heap footprint: the block-pointer vector plus each block's payload
    /// and `Arc` header. Shared blocks are charged to every list holding
    /// them (each node would hold its own copy across real machines, which
    /// is what the control-plane bytes/filter accounting wants). Counted
    /// over *live* blocks — `len`, not transient `Vec` capacity — so the
    /// figure is an exact function of the block count:
    /// `blocks × (size_of::<PostingBlock>() + arc header + pointer)`.
    pub(crate) fn estimated_bytes(&self) -> usize {
        self.blocks.len()
            * (std::mem::size_of::<PostingBlock>()
                + ARC_HEADER_BYTES
                + std::mem::size_of::<Arc<PostingBlock>>())
    }
}

/// Galloping block-wise union of several posting lists into `out`,
/// ascending and deduplicated — the multi-term boolean kernel.
///
/// A cursor walks each list block by block. At every step the cursor with
/// the smallest current id advances; when its whole remaining block sits
/// below every other cursor's current id (a one-comparison check against
/// the block's `max` summary), the remainder is bulk-copied and the block
/// skipped in one move — no per-id comparisons, no post-hoc sort/dedup
/// pass. Disjoint lists degrade to pure `memcpy`; fully interleaved lists
/// degrade to a k-way merge.
pub(crate) fn union_lists_into(lists: &[&BlockStore], out: &mut Vec<FilterId>) {
    struct Cursor<'a> {
        blocks: &'a [Arc<PostingBlock>],
        /// Current block index.
        bi: usize,
        /// Offset of the current id inside the current block.
        off: usize,
    }

    impl Cursor<'_> {
        #[inline]
        fn current(&self) -> Option<FilterId> {
            self.blocks.get(self.bi).map(|b| b.as_slice()[self.off])
        }

        #[inline]
        fn advance_one(&mut self) {
            self.off += 1;
            if self.blocks.get(self.bi).is_none_or(|b| self.off >= b.len()) {
                self.bi += 1;
                self.off = 0;
            }
        }
    }

    let mut cursors: Vec<Cursor> = lists
        .iter()
        .filter(|l| !l.is_empty())
        .map(|l| Cursor {
            blocks: l.blocks(),
            bi: 0,
            off: 0,
        })
        .collect();
    loop {
        // The cursor holding the globally smallest current id.
        let mut min_id: Option<FilterId> = None;
        let mut min_k = 0usize;
        for (k, c) in cursors.iter().enumerate() {
            if let Some(id) = c.current() {
                if min_id.is_none_or(|m| id < m) {
                    min_id = Some(id);
                    min_k = k;
                }
            }
        }
        let Some(id) = min_id else {
            break; // every cursor exhausted
        };
        // Gallop: if the rest of the leader's block is below every other
        // cursor (summary check), copy it whole and skip to the next block.
        let others_min = cursors
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != min_k)
            .filter_map(|(_, c)| c.current())
            .min();
        let leader = &mut cursors[min_k];
        let block_max = leader.blocks[leader.bi].max();
        if others_min.is_none_or(|o| block_max < o) {
            out.extend_from_slice(&leader.blocks[leader.bi].as_slice()[leader.off..]);
            leader.bi += 1;
            leader.off = 0;
        } else {
            out.push(id);
            for c in &mut cursors {
                if c.current() == Some(id) {
                    c.advance_one();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: impl IntoIterator<Item = u64>) -> Vec<FilterId> {
        raw.into_iter().map(FilterId).collect()
    }

    fn store(raw: impl IntoIterator<Item = u64>) -> BlockStore {
        let mut s = BlockStore::default();
        for id in raw {
            s.insert(FilterId(id));
        }
        s
    }

    #[test]
    fn summary_header_tracks_mutations() {
        let mut s = store([10, 5, 20]);
        let b = &s.blocks()[0];
        assert_eq!((b.min(), b.max(), b.len()), (FilterId(5), FilterId(20), 3));
        s.remove(FilterId(5));
        let b = &s.blocks()[0];
        assert_eq!((b.min(), b.max()), (FilterId(10), FilterId(20)));
    }

    #[test]
    fn full_block_splits_on_middle_insert() {
        let mut s = store((0..BLOCK_CAP as u64).map(|i| i * 2));
        assert_eq!(s.blocks().len(), 1);
        assert!(s.insert(FilterId(5))); // odd id lands mid-block
        assert_eq!(s.blocks().len(), 2, "full block must split");
        assert_eq!(s.len(), BLOCK_CAP + 1);
        let collected: Vec<FilterId> = s.iter().collect();
        assert!(collected.windows(2).all(|w| w[0] < w[1]));
        assert!(s.contains(FilterId(5)));
    }

    #[test]
    fn drained_block_is_pruned() {
        let mut s = store([1, 1000]);
        // Force two blocks by filling past capacity.
        for i in 0..BLOCK_CAP as u64 {
            s.insert(FilterId(i + 2));
        }
        let blocks_before = s.blocks().len();
        assert!(blocks_before >= 2);
        // Drain the last block entirely.
        assert!(s.remove(FilterId(1000)));
        let tail_max = s.blocks().last().map(|b| b.max());
        assert!(tail_max.is_some_and(|m| m < FilterId(1000)));
        assert!(s.blocks().iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn extend_sorted_preserves_untouched_block_sharing() {
        let mut s = store((0..600u64).map(|i| i * 3));
        let snapshot = s.clone();
        // A batch overlapping only the low range: high blocks must keep
        // their Arc identity in the mutated copy.
        s.extend_sorted(&ids([1, 2, 4]));
        let shared_tail = s
            .blocks()
            .iter()
            .rev()
            .zip(snapshot.blocks().iter().rev())
            .take_while(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        assert!(
            shared_tail >= 2,
            "blocks past the overlap span must stay Arc-shared (shared {shared_tail})"
        );
    }

    #[test]
    fn union_matches_sorted_dedup_concat() {
        let a = store((0..300u64).map(|i| i * 2));
        let b = store((0..300u64).map(|i| i * 3));
        let c = store(500..520u64);
        let mut got = Vec::new();
        union_lists_into(&[&a, &b, &c], &mut got);
        let mut want: Vec<FilterId> = a.iter().chain(b.iter()).chain(c.iter()).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn union_of_disjoint_lists_bulk_copies() {
        let a = store(0..200u64);
        let b = store(1000..1200u64);
        let mut got = Vec::new();
        union_lists_into(&[&b, &a], &mut got);
        let want: Vec<FilterId> = a.iter().chain(b.iter()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn union_of_empty_and_single_lists() {
        let empty = BlockStore::default();
        let a = store([7, 9]);
        let mut got = Vec::new();
        union_lists_into(&[&empty], &mut got);
        assert!(got.is_empty());
        union_lists_into(&[&empty, &a], &mut got);
        assert_eq!(got, ids([7, 9]));
    }
}
