//! Property tests: SIFT and the home-node matcher against a brute-force
//! model, under both semantics and through removal churn.

use move_index::{brute_force, InvertedIndex};
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use proptest::prelude::*;

fn arb_filters() -> impl Strategy<Value = Vec<Filter>> {
    prop::collection::vec(prop::collection::btree_set(0u32..60, 1..5), 1..80).prop_map(|sets| {
        sets.into_iter()
            .enumerate()
            .map(|(i, terms)| Filter::new(i as u64, terms.into_iter().map(TermId)))
            .collect()
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    prop::collection::btree_set(0u32..80, 1..30)
        .prop_map(|terms| Document::from_distinct_terms(0u64, terms.into_iter().map(TermId)))
}

proptest! {
    #[test]
    fn sift_matches_brute_force(filters in arb_filters(), doc in arb_doc(), th in 0.2f64..1.0, boolean in any::<bool>()) {
        let semantics = if boolean {
            MatchSemantics::Boolean
        } else {
            MatchSemantics::similarity_threshold(th)
        };
        let mut idx = InvertedIndex::new(semantics);
        for f in &filters {
            idx.insert(f.clone());
        }
        let got = idx.match_document(&doc);
        prop_assert_eq!(&got.matched, &brute_force(&filters, &doc, semantics));
        // Work accounting: one list per document term with postings.
        let with_postings = doc
            .terms()
            .iter()
            .filter(|t| idx.posting_len(**t) > 0)
            .count() as u64;
        prop_assert_eq!(got.lists_retrieved, with_postings);
    }

    #[test]
    fn union_of_single_term_matches_is_sift(filters in arb_filters(), doc in arb_doc()) {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in &filters {
            idx.insert(f.clone());
        }
        let mut union: Vec<FilterId> = doc
            .terms()
            .iter()
            .flat_map(|&t| idx.match_term(&doc, t).matched)
            .collect();
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(union, idx.match_document(&doc).matched);
    }

    #[test]
    fn removals_are_exact(filters in arb_filters(), doc in arb_doc(), keep_mod in 2u64..4) {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in &filters {
            idx.insert(f.clone());
        }
        let kept: Vec<Filter> = filters
            .iter()
            .filter(|f| f.id().0 % keep_mod == 0)
            .cloned()
            .collect();
        for f in &filters {
            if f.id().0 % keep_mod != 0 {
                prop_assert!(idx.remove(f.id()));
            }
        }
        prop_assert_eq!(idx.len(), kept.len());
        prop_assert_eq!(
            idx.match_document(&doc).matched,
            brute_force(&kept, &doc, MatchSemantics::Boolean)
        );
        // Total postings equal the kept filters' term counts.
        let expect: u64 = kept.iter().map(|f| f.len() as u64).sum();
        prop_assert_eq!(idx.total_postings(), expect);
    }
}
