//! Property tests: SIFT and the home-node matcher against a brute-force
//! model, under both semantics and through removal churn.

use move_index::{brute_force, InvertedIndex};
use move_types::{Document, Filter, FilterId, MatchSemantics, TermId};
use proptest::prelude::*;

fn arb_filters() -> impl Strategy<Value = Vec<Filter>> {
    prop::collection::vec(prop::collection::btree_set(0u32..60, 1..5), 1..80).prop_map(|sets| {
        sets.into_iter()
            .enumerate()
            .map(|(i, terms)| Filter::new(i as u64, terms.into_iter().map(TermId)))
            .collect()
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    prop::collection::btree_set(0u32..80, 1..30)
        .prop_map(|terms| Document::from_distinct_terms(0u64, terms.into_iter().map(TermId)))
}

proptest! {
    #[test]
    fn sift_matches_brute_force(filters in arb_filters(), doc in arb_doc(), th in 0.2f64..1.0, boolean in any::<bool>()) {
        let semantics = if boolean {
            MatchSemantics::Boolean
        } else {
            MatchSemantics::similarity_threshold(th)
        };
        let mut idx = InvertedIndex::new(semantics);
        for f in &filters {
            idx.insert(f.clone());
        }
        let got = idx.match_document(&doc);
        prop_assert_eq!(&got.matched, &brute_force(&filters, &doc, semantics));
        // Work accounting: one list per document term with postings.
        let with_postings = doc
            .terms()
            .iter()
            .filter(|t| idx.posting_len(**t) > 0)
            .count() as u64;
        prop_assert_eq!(got.lists_retrieved, with_postings);
    }

    #[test]
    fn union_of_single_term_matches_is_sift(filters in arb_filters(), doc in arb_doc()) {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in &filters {
            idx.insert(f.clone());
        }
        let mut union: Vec<FilterId> = doc
            .terms()
            .iter()
            .flat_map(|&t| idx.match_term(&doc, t).matched)
            .collect();
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(union, idx.match_document(&doc).matched);
    }

    #[test]
    fn removals_are_exact(filters in arb_filters(), doc in arb_doc(), keep_mod in 2u64..4) {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in &filters {
            idx.insert(f.clone());
        }
        let kept: Vec<Filter> = filters
            .iter()
            .filter(|f| f.id().0 % keep_mod == 0)
            .cloned()
            .collect();
        for f in &filters {
            if f.id().0 % keep_mod != 0 {
                prop_assert!(idx.remove(f.id()));
            }
        }
        prop_assert_eq!(idx.len(), kept.len());
        prop_assert_eq!(
            idx.match_document(&doc).matched,
            brute_force(&kept, &doc, MatchSemantics::Boolean)
        );
        // Total postings equal the kept filters' term counts.
        let expect: u64 = kept.iter().map(|f| f.len() as u64).sum();
        prop_assert_eq!(idx.total_postings(), expect);
    }
}

proptest! {
    /// The bulk construction path must be indistinguishable from the
    /// incremental one: same postings, same filters, same match results.
    #[test]
    fn build_from_equals_incremental_inserts(filters in arb_filters(), doc in arb_doc()) {
        use std::sync::Arc;

        let mut incremental = InvertedIndex::new(MatchSemantics::Boolean);
        let mut entries: Vec<(TermId, Arc<Filter>)> = Vec::new();
        for f in &filters {
            let shared = Arc::new(f.clone());
            for &t in f.terms() {
                incremental.insert_for_term(f.clone(), t);
                entries.push((t, Arc::clone(&shared)));
            }
        }
        let bulk = InvertedIndex::build_from(MatchSemantics::Boolean, entries);
        prop_assert_eq!(bulk.len(), incremental.len());
        prop_assert_eq!(bulk.total_postings(), incremental.total_postings());
        for f in &filters {
            for &t in f.terms() {
                prop_assert_eq!(bulk.posting_len(t), incremental.posting_len(t));
            }
        }
        prop_assert_eq!(
            bulk.match_document(&doc).matched,
            incremental.match_document(&doc).matched
        );
        // And removal (the refcount path) behaves identically afterwards.
        for f in filters.iter().take(filters.len() / 2) {
            let mut b2 = bulk.clone();
            let mut i2 = incremental.clone();
            prop_assert_eq!(b2.remove(f.id()), i2.remove(f.id()));
            prop_assert_eq!(b2.total_postings(), i2.total_postings());
        }
    }

    /// Reusing one scratch/outcome pair across many documents must give
    /// exactly the per-document results of fresh calls — the buffers carry
    /// no state between documents.
    #[test]
    fn scratch_reuse_is_stateless(filters in arb_filters(), docs in prop::collection::vec(arb_doc(), 1..8), boolean in any::<bool>()) {
        use move_index::{MatchOutcome, MatchScratch};

        let semantics = if boolean {
            MatchSemantics::Boolean
        } else {
            MatchSemantics::similarity_threshold(0.5)
        };
        let mut idx = InvertedIndex::new(semantics);
        for f in &filters {
            idx.insert(f.clone());
        }
        let mut scratch = MatchScratch::new();
        let mut out = MatchOutcome::default();
        for d in &docs {
            out.clear();
            idx.match_document_into(d, &mut scratch, &mut out);
            let fresh = idx.match_document(d);
            prop_assert_eq!(&out.matched, &fresh.matched);
            prop_assert_eq!(out.lists_retrieved, fresh.lists_retrieved);
            prop_assert_eq!(out.postings_scanned, fresh.postings_scanned);
        }
    }

    /// The home-node kernel under threshold semantics: exactly the
    /// brute-force matches among filters containing the routing term.
    #[test]
    fn match_term_threshold_equals_brute_force(filters in arb_filters(), doc in arb_doc(), th in 0.2f64..1.0) {
        let semantics = MatchSemantics::similarity_threshold(th);
        let mut idx = InvertedIndex::new(semantics);
        for f in &filters {
            idx.insert(f.clone());
        }
        for &t in doc.terms() {
            let got = idx.match_term(&doc, t).matched;
            let containing: Vec<Filter> = filters
                .iter()
                .filter(|f| f.terms().contains(&t))
                .cloned()
                .collect();
            prop_assert_eq!(got, brute_force(&containing, &doc, semantics));
        }
    }

    /// The per-filter posting refcount: dropping a filter's term postings
    /// one by one keeps the body stored until the last posting goes, and
    /// never disturbs other filters.
    #[test]
    fn term_posting_refcount_tracks_last_posting(filters in arb_filters()) {
        let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
        for f in &filters {
            idx.insert(f.clone());
        }
        let victim = &filters[0];
        let terms: Vec<TermId> = victim.terms().to_vec();
        for (i, &t) in terms.iter().enumerate() {
            prop_assert!(idx.has_term_posting(victim.id(), t));
            prop_assert!(idx.remove_term_posting(victim.id(), t));
            prop_assert!(!idx.has_term_posting(victim.id(), t));
            let body_should_remain = i + 1 < terms.len();
            prop_assert_eq!(idx.filter(victim.id()).is_some(), body_should_remain);
        }
        prop_assert!(!idx.remove(victim.id()), "already fully removed");
        // Everyone else is untouched.
        for f in filters.iter().skip(1) {
            prop_assert!(idx.filter(f.id()).is_some());
        }
    }
}

/// The dedup bitmap must agree with plain sort+dedup on adversarial id
/// patterns: dense runs, sparse outliers (bitmap fallback), duplicates.
#[test]
fn sort_dedup_equals_sort_and_dedup() {
    use move_index::MatchScratch;

    let cases: Vec<Vec<u64>> = vec![
        vec![],
        vec![0],
        vec![5, 5, 5, 5],
        vec![9, 3, 9, 1, 0, 3],
        (0..2000).rev().flat_map(|i| [i, i]).collect(),
        vec![1, u64::MAX, 7, u64::MAX, 0],
        vec![1 << 40, 3, 1 << 40, 2, 1],
        (0..500).map(|i| i * 64).collect(),
    ];
    let mut scratch = MatchScratch::new();
    for case in cases {
        let mut via_scratch: Vec<FilterId> = case.iter().copied().map(FilterId).collect();
        let mut via_sort = via_scratch.clone();
        scratch.sort_dedup(&mut via_scratch);
        via_sort.sort_unstable();
        via_sort.dedup();
        assert_eq!(via_scratch, via_sort, "case {case:?}");
        // The bitmap invariant: a second use on the same scratch is clean.
        let mut again: Vec<FilterId> = case.iter().copied().map(FilterId).collect();
        scratch.sort_dedup(&mut again);
        assert_eq!(again, via_sort, "reuse on case {case:?}");
    }
}
