//! Property tests: Bloom filters never produce false negatives, under any
//! insertion pattern, and counting filters honour multiplicities.

use move_bloom::{BloomFilter, CountingBloomFilter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn no_false_negatives(
        items in prop::collection::hash_set(any::<u64>(), 0..300),
        m in 64usize..4096,
        k in 1u32..8,
    ) {
        let mut bf = BloomFilter::with_params(m, k);
        for i in &items {
            bf.insert(i);
        }
        for i in &items {
            prop_assert!(bf.contains(i), "false negative for {i}");
        }
    }

    #[test]
    fn counting_filter_survives_removals(
        keep in prop::collection::hash_set(0u64..500, 1..100),
        remove in prop::collection::hash_set(500u64..1000, 1..100),
    ) {
        let mut cbf = CountingBloomFilter::new(1_000, 0.01);
        for i in keep.iter().chain(&remove) {
            cbf.insert(i);
        }
        for i in &remove {
            cbf.remove(i);
        }
        for i in &keep {
            prop_assert!(cbf.contains(i), "removal of others broke {i}");
        }
    }

    #[test]
    fn union_is_superset(
        left in prop::collection::vec(any::<u32>(), 0..100),
        right in prop::collection::vec(any::<u32>(), 0..100),
    ) {
        let mut a = BloomFilter::with_params(2048, 4);
        let mut b = BloomFilter::with_params(2048, 4);
        for i in &left { a.insert(i); }
        for i in &right { b.insert(i); }
        a.union(&b).unwrap();
        for i in left.iter().chain(&right) {
            prop_assert!(a.contains(i));
        }
    }
}
