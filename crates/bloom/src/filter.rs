//! The classic bit-array Bloom filter.

use crate::hashing::{probes, sizing};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// A space-efficient probabilistic set with no false negatives.
///
/// MOVE keeps one of these summarizing every term that appears in any
/// registered filter; document terms failing the membership test are not
/// forwarded at all (paper §V).
///
/// # Examples
///
/// ```
/// use move_bloom::BloomFilter;
///
/// let mut bf = BloomFilter::new(100, 0.01);
/// for t in 0..100u32 {
///     bf.insert(&t);
/// }
/// assert!((0..100u32).all(|t| bf.contains(&t))); // never a false negative
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` at the target
    /// false-positive rate `fpr` (see [`crate::sizing`]).
    pub fn new(expected_items: usize, fpr: f64) -> Self {
        let (m_bits, k) = sizing(expected_items, fpr);
        Self::with_params(m_bits, k)
    }

    /// Creates a filter with explicit parameters: `m_bits` slots and `k`
    /// probes per item.
    ///
    /// # Panics
    ///
    /// Panics if `m_bits == 0` or `k == 0`.
    pub fn with_params(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0, "m_bits must be positive");
        assert!(k > 0, "k must be positive");
        Self {
            bits: vec![0; m_bits.div_ceil(64)],
            m_bits,
            k,
            inserted: 0,
        }
    }

    /// Inserts an item.
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) {
        for p in probes(item, self.m_bits, self.k) {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership. False positives are possible at the configured
    /// rate; false negatives are not.
    pub fn contains<T: Hash + ?Sized>(&self, item: &T) -> bool {
        probes(item, self.m_bits, self.k).all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of `insert` calls so far (items, with multiplicity).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of bit slots.
    pub fn bit_len(&self) -> usize {
        self.m_bits
    }

    /// Number of probes per item.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// The false-positive probability predicted from the current fill
    /// fraction: `(set_bits / m)^k`.
    pub fn estimated_fpr(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        let fill = f64::from(set) / self.m_bits as f64;
        fill.powi(self.k as i32)
    }

    /// Merges another filter of identical parameters into this one
    /// (set union).
    ///
    /// # Errors
    ///
    /// Returns `Err` if the parameters differ.
    pub fn union(&mut self, other: &BloomFilter) -> Result<(), ParamMismatchError> {
        if self.m_bits != other.m_bits || self.k != other.k {
            return Err(ParamMismatchError);
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.inserted += other.inserted;
        Ok(())
    }
}

/// Error returned by [`BloomFilter::union`] when the two filters were built
/// with different `(m, k)` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamMismatchError;

impl std::fmt::Display for ParamMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bloom filter parameters do not match")
    }
}

impl std::error::Error for ParamMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u64 {
            bf.insert(&i);
        }
        for i in 0..10_000u64 {
            assert!(bf.contains(&i), "false negative for {i}");
        }
    }

    #[test]
    fn measured_fpr_near_design_fpr() {
        let target = 0.01;
        let mut bf = BloomFilter::new(10_000, target);
        for i in 0..10_000u64 {
            bf.insert(&i);
        }
        let trials = 50_000u64;
        let fp = (10_000..10_000 + trials).filter(|i| bf.contains(i)).count();
        let measured = fp as f64 / trials as f64;
        assert!(
            measured < target * 2.0,
            "measured fpr {measured} far above design {target}"
        );
        assert!(bf.estimated_fpr() < target * 2.0);
    }

    #[test]
    fn empty_filter_contains_nothing_probable() {
        let bf = BloomFilter::new(100, 0.01);
        assert!(!(0..1000u32).any(|i| bf.contains(&i)));
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn union_merges_membership() {
        let mut a = BloomFilter::with_params(1024, 4);
        let mut b = BloomFilter::with_params(1024, 4);
        a.insert(&"left");
        b.insert(&"right");
        a.union(&b).unwrap();
        assert!(a.contains(&"left") && a.contains(&"right"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    fn union_rejects_mismatched_params() {
        let mut a = BloomFilter::with_params(1024, 4);
        let b = BloomFilter::with_params(512, 4);
        assert_eq!(a.union(&b), Err(ParamMismatchError));
    }

    #[test]
    #[should_panic(expected = "m_bits")]
    fn zero_bits_rejected() {
        let _ = BloomFilter::with_params(0, 1);
    }

    #[test]
    fn works_with_str_and_tuples() {
        let mut bf = BloomFilter::new(10, 0.01);
        bf.insert("term");
        bf.insert(&(1u32, 2u32));
        assert!(bf.contains("term"));
        assert!(bf.contains(&(1u32, 2u32)));
        assert!(!bf.contains(&(2u32, 1u32)));
    }
}
