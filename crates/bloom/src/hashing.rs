//! Hashing and sizing machinery shared by both filter variants.

use std::hash::{Hash, Hasher};

/// A tiny FNV-1a 64-bit hasher — a deterministic, dependency-free base hash.
/// (`std`'s default hasher is randomly seeded per process, which would make
/// simulated runs non-reproducible.)
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// SplitMix64 finalizer: decorrelates the two derived hashes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the two independent base hashes `(h1, h2)` for an item, from
/// which the `k` probe positions are derived as `h1 + i·h2 mod m`
/// (Kirsch–Mitzenmacher double hashing).
///
/// # Examples
///
/// ```
/// let (a1, a2) = move_bloom::double_hashes(&"x");
/// let (b1, b2) = move_bloom::double_hashes(&"x");
/// assert_eq!((a1, a2), (b1, b2)); // deterministic
/// ```
pub fn double_hashes<T: Hash + ?Sized>(item: &T) -> (u64, u64) {
    let mut hasher = Fnv1a::default();
    item.hash(&mut hasher);
    let h = hasher.finish();
    let h1 = splitmix64(h);
    let h2 = splitmix64(h ^ 0x5851_f42d_4c95_7f2d) | 1; // odd, so probes cycle through all slots
    (h1, h2)
}

/// Computes the optimal Bloom parameters `(m_bits, k_hashes)` for an
/// expected `items` count and target false-positive rate `fpr`:
/// `m = -n·ln p / (ln 2)²`, `k = (m/n)·ln 2`.
///
/// Degenerate inputs are clamped: at least 64 bits and 1 hash.
///
/// # Examples
///
/// ```
/// let (m, k) = move_bloom::sizing(1_000, 0.01);
/// assert!(m >= 9_000 && m <= 10_500); // ≈ 9.59 bits per item
/// assert_eq!(k, 7);
/// ```
pub fn sizing(items: usize, fpr: f64) -> (usize, u32) {
    let n = items.max(1) as f64;
    let p = fpr.clamp(1e-10, 0.5);
    let ln2 = std::f64::consts::LN_2;
    let m = (-n * p.ln() / (ln2 * ln2)).ceil().max(64.0);
    let k = ((m / n) * ln2).round().max(1.0);
    (m as usize, k as u32)
}

/// Iterator over the `k` probe bit positions for an item in a filter of
/// `m_bits` slots.
pub(crate) fn probes<T: Hash + ?Sized>(
    item: &T,
    m_bits: usize,
    k: u32,
) -> impl Iterator<Item = usize> {
    let (h1, h2) = double_hashes(item);
    let m = m_bits as u64;
    (0..u64::from(k)).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_differ_per_item() {
        assert_ne!(double_hashes(&1u64), double_hashes(&2u64));
    }

    #[test]
    fn h2_is_odd() {
        for i in 0..100u64 {
            let (_, h2) = double_hashes(&i);
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn sizing_scales_linearly_in_items() {
        let (m1, _) = sizing(1_000, 0.01);
        let (m10, _) = sizing(10_000, 0.01);
        assert!((m10 as f64 / m1 as f64 - 10.0).abs() < 0.01);
    }

    #[test]
    fn sizing_clamps_degenerate_input() {
        let (m, k) = sizing(0, 2.0);
        assert!(m >= 64);
        assert!(k >= 1);
    }

    #[test]
    fn probes_in_range_and_distinct_enough() {
        let m = 1024;
        let ps: Vec<_> = probes(&"hello", m, 8).collect();
        assert_eq!(ps.len(), 8);
        assert!(ps.iter().all(|&p| p < m));
        let distinct: std::collections::HashSet<_> = ps.iter().collect();
        assert!(distinct.len() >= 6, "probes should rarely collide: {ps:?}");
    }
}
