//! The counting Bloom filter variant.

use crate::hashing::{probes, sizing};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// A Bloom filter whose slots are small counters instead of bits, supporting
/// removal. MOVE uses it for the registered-filter term summary when users
/// unregister filters: removing the last filter containing a term must stop
/// documents from being forwarded for that term.
///
/// Counters are 8-bit and saturate at 255; a saturated counter is never
/// decremented (it can no longer prove a zero count), preserving the
/// no-false-negative guarantee at the cost of a slightly higher
/// false-positive rate after heavy churn.
///
/// # Examples
///
/// ```
/// use move_bloom::CountingBloomFilter;
///
/// let mut cbf = CountingBloomFilter::new(100, 0.01);
/// cbf.insert(&"news");
/// cbf.insert(&"news");
/// cbf.remove(&"news");
/// assert!(cbf.contains(&"news")); // one copy still present
/// cbf.remove(&"news");
/// assert!(!cbf.contains(&"news"));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    k: u32,
    inserted: u64,
}

impl CountingBloomFilter {
    /// Creates a filter sized for `expected_items` at false-positive rate
    /// `fpr`.
    pub fn new(expected_items: usize, fpr: f64) -> Self {
        let (m, k) = sizing(expected_items, fpr);
        Self::with_params(m, k)
    }

    /// Creates a filter with `slots` counters and `k` probes per item.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `k == 0`.
    pub fn with_params(slots: usize, k: u32) -> Self {
        assert!(slots > 0, "slots must be positive");
        assert!(k > 0, "k must be positive");
        Self {
            counters: vec![0; slots],
            k,
            inserted: 0,
        }
    }

    /// Inserts an item (one more copy).
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) {
        for p in probes(item, self.counters.len(), self.k) {
            self.counters[p] = self.counters[p].saturating_add(1);
        }
        self.inserted += 1;
    }

    /// Removes one copy of an item.
    ///
    /// Removing an item that was never inserted corrupts the filter (as with
    /// any counting Bloom filter); callers own that invariant. Saturated
    /// counters are left untouched.
    pub fn remove<T: Hash + ?Sized>(&mut self, item: &T) {
        for p in probes(item, self.counters.len(), self.k) {
            if self.counters[p] != u8::MAX && self.counters[p] > 0 {
                self.counters[p] -= 1;
            }
        }
        self.inserted = self.inserted.saturating_sub(1);
    }

    /// Tests membership (no false negatives, assuming balanced
    /// insert/remove usage).
    pub fn contains<T: Hash + ?Sized>(&self, item: &T) -> bool {
        probes(item, self.counters.len(), self.k).all(|p| self.counters[p] > 0)
    }

    /// Net number of items currently inserted.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of counter slots.
    pub fn slots(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_round_trip() {
        let mut cbf = CountingBloomFilter::new(1_000, 0.01);
        for i in 0..1_000u32 {
            cbf.insert(&i);
        }
        for i in 0..1_000u32 {
            assert!(cbf.contains(&i));
        }
        for i in 0..500u32 {
            cbf.remove(&i);
        }
        for i in 500..1_000u32 {
            assert!(cbf.contains(&i), "false negative after unrelated removals");
        }
        assert_eq!(cbf.inserted(), 500);
    }

    #[test]
    fn multiplicity_respected() {
        let mut cbf = CountingBloomFilter::new(16, 0.01);
        cbf.insert(&7u8);
        cbf.insert(&7u8);
        cbf.remove(&7u8);
        assert!(cbf.contains(&7u8));
        cbf.remove(&7u8);
        assert!(!cbf.contains(&7u8));
    }

    #[test]
    fn saturated_counters_never_decrement() {
        let mut cbf = CountingBloomFilter::with_params(4, 1);
        for _ in 0..300 {
            cbf.insert(&1u8);
        }
        // Counter saturated at 255; removals must not reopen a false negative.
        for _ in 0..300 {
            cbf.remove(&1u8);
        }
        assert!(cbf.contains(&1u8));
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn zero_slots_rejected() {
        let _ = CountingBloomFilter::with_params(0, 1);
    }
}
