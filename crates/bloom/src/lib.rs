//! Bloom filters for the MOVE dissemination engine.
//!
//! Paper §V ("Document Dissemination"): a published document is forwarded to
//! the home nodes of the terms `tᵢ ∈ d ∧ tᵢ ∈ BF`, "where BF is the bloom
//! filter summarizing all terms in registered filters. The term membership
//! check helps reduce the forwarding cost." This crate implements that
//! structure from scratch:
//!
//! * [`BloomFilter`] — the classic bit-array filter with double hashing,
//! * [`CountingBloomFilter`] — a counting variant supporting removal, used
//!   when filters are unregistered.
//!
//! # Examples
//!
//! ```
//! use move_bloom::BloomFilter;
//!
//! let mut bf = BloomFilter::new(1_000, 0.01);
//! bf.insert(&42u64);
//! assert!(bf.contains(&42u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod filter;
mod hashing;

pub use counting::CountingBloomFilter;
pub use filter::BloomFilter;
pub use hashing::{double_hashes, sizing};
