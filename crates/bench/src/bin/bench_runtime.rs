//! Live-engine benchmark: the Fig. 8(a) N=20 cluster workload executed on
//! real OS threads by `move-runtime` instead of the virtual-time queueing
//! simulator. Reports *wall-clock* throughput and match-latency percentiles
//! for all three schemes, plus the full per-node runtime report as
//! `results/BENCH_runtime.json`.
//!
//! The simulator's throughput numbers model a disk-bound 2012 cluster; the
//! live numbers measure this machine matching in memory, so the absolute
//! values differ by orders of magnitude — what carries over is the relative
//! cost structure (tasks dispatched, postings scanned per scheme).

use move_bench::{
    build_scheme, paper_system, ExperimentConfig, Scale, SchemeKind, Table, Workload,
};
use move_runtime::{Engine, RuntimeConfig, RuntimeReport};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SchemeRun {
    scheme: &'static str,
    elapsed_secs: f64,
    throughput_docs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    report: RuntimeReport,
}

#[derive(Serialize)]
struct BenchReport {
    scale: f64,
    nodes: usize,
    filters: usize,
    docs: usize,
    mailbox_capacity: usize,
    batch_size: usize,
    runs: Vec<SchemeRun>,
}

fn main() {
    let scale = Scale::from_env();
    println!("bench_runtime ({scale})");
    let nodes = 20;
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(1_000_000, 200) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let cfg = ExperimentConfig::new(paper_system(scale, nodes, w.vocabulary));
    let rt = RuntimeConfig::default();

    let mut table = Table::new(
        "bench_runtime",
        &[
            "scheme",
            "docs",
            "elapsed_s",
            "docs_per_s",
            "p50_us",
            "p99_us",
            "tasks",
            "deliveries",
        ],
    );
    let mut runs = Vec::new();
    for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
        // Setup (registration, MOVE's observe+allocate) is untimed, like the
        // simulator runs; the clock covers publish through full drain.
        let scheme = build_scheme(kind, &cfg, &w);
        let engine = Engine::start(scheme, rt.clone()).expect("spawn engine threads");
        let start = Instant::now();
        for d in &w.docs {
            engine.publish(d.clone());
        }
        engine.flush();
        let elapsed = start.elapsed().as_secs_f64();
        let report = engine.shutdown().expect("engine ran to completion");

        let throughput = w.docs.len() as f64 / elapsed;
        let p50_us = report.latency.p50 as f64 / 1e3;
        let p99_us = report.latency.p99 as f64 / 1e3;
        table.row(&[
            kind.label().to_owned(),
            w.docs.len().to_string(),
            format!("{elapsed:.3}"),
            format!("{throughput:.0}"),
            format!("{p50_us:.1}"),
            format!("{p99_us:.1}"),
            report.tasks_dispatched.to_string(),
            report.deliveries().to_string(),
        ]);
        println!(
            "{}: {} docs in {:.3}s wall = {:.0} docs/s; latency p50 {:.1}us p99 {:.1}us; \
             {} tasks, {} postings scanned, {} allocation updates",
            kind.label(),
            w.docs.len(),
            elapsed,
            throughput,
            p50_us,
            p99_us,
            report.tasks_dispatched,
            report.postings_scanned(),
            report.allocation_updates,
        );
        runs.push(SchemeRun {
            scheme: kind.label(),
            elapsed_secs: elapsed,
            throughput_docs_per_sec: throughput,
            p50_us,
            p99_us,
            report,
        });
    }
    table.finish();

    let bench = BenchReport {
        scale: scale.factor,
        nodes,
        filters: w.filters.len(),
        docs: w.docs.len(),
        mailbox_capacity: rt.mailbox_capacity,
        batch_size: rt.batch_size,
        runs,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_runtime.json", json).expect("write json report");
    println!("wrote results/BENCH_runtime.json");
}
