//! Figure 8(b): cluster throughput vs the injected document batch size
//! `Q ∈ [10, 10⁴]`. Paper: all schemes degrade as `Q` grows — from
//! `Q = 10` to `Q = 1000` MOVE loses 3.62×, RS 6.09×, IL 14.11× — MOVE
//! degrading least because its random partition-row choice spreads each
//! hot term's documents.

use move_bench::{
    build_scheme, paper_system, run_stream, ExperimentConfig, Scale, SchemeKind, Table, Workload,
};

fn main() {
    let scale = Scale::from_env();
    println!("fig8b_vs_docs ({scale})");
    // Paper defaults: P = 4×10⁶ filters, N = 20 nodes, WT documents — the
    // same dataset realization as every other cluster figure.
    let w = Workload::paper_cluster(scale).slice_filters(scale.count(4_000_000, 100) as usize);
    let mut table = Table::new(
        "fig8b_vs_docs",
        &["Q_docs", "scheme", "throughput", "capacity_throughput"],
    );
    let mut cfg = ExperimentConfig::new(paper_system(scale, 20, w.vocabulary));
    // Burst backlog thrashes caches and disks super-linearly; the
    // congestion model bends throughput downward in the batch size as in
    // the paper's Fig. 8(b).
    cfg.congestion = Some((1.0, 2.0));

    let mut at_q: Vec<(usize, SchemeKind, f64)> = Vec::new();
    for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
        let mut scheme = build_scheme(kind, &cfg, &w);
        for q in [10usize, 100, 1_000, 10_000] {
            if q > w.docs.len() {
                println!(
                    "skipping Q={q}: only {} documents at this scale",
                    w.docs.len()
                );
                continue;
            }
            // Small batches are noisy: average disjoint windows of the
            // same stream.
            let reps = (2_000 / q).clamp(1, 20);
            let mut tput = 0.0;
            let mut cap = 0.0;
            for rep in 0..reps {
                let wq = w.doc_window(rep * q, q);
                let r = run_stream(scheme.as_mut(), &cfg, &wq.docs);
                tput += r.sim.throughput;
                cap += r.capacity_throughput;
            }
            let (tput, cap) = (tput / reps as f64, cap / reps as f64);
            table.row(&[
                q.to_string(),
                kind.label().to_owned(),
                format!("{tput:.2}"),
                format!("{cap:.2}"),
            ]);
            println!("Q={q} {}: {tput:.2} docs/s", kind.label());
            at_q.push((q, kind, tput));
        }
    }
    table.finish();
    for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
        let get = |q: usize| {
            at_q.iter()
                .find(|(qq, k, _)| *qq == q && *k == kind)
                .map(|(_, _, t)| *t)
        };
        if let (Some(t10), Some(t1000)) = (get(10), get(1_000)) {
            if t1000 > 0.0 {
                println!(
                    "{}: Q 10 -> 1000 degradation {:.2}x",
                    kind.label(),
                    t10 / t1000
                );
            }
        }
    }
    println!("paper degradation Q 10 -> 1000: move 3.62x, rs 6.09x, il 14.11x");
}
