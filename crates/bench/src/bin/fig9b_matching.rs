//! Figure 9(b): ranked per-node matching cost (documents received per
//! node), normalized to the RS scheme's mean. Paper: MOVE is the most even
//! — its low allocation ratio `rᵢ` randomizes documents across `1/rᵢ`
//! partitions — RS next, IL the most skewed (hot home nodes).

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};
use move_stats::Summary;

fn main() {
    let scale = Scale::from_env();
    println!("fig9b_matching ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let cfg = ExperimentConfig::new(paper_system(scale, 20, w.vocabulary));

    let mut per_scheme: Vec<(SchemeKind, Vec<f64>)> = Vec::new();
    for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
        let r = run_scheme(kind, &cfg, &w);
        per_scheme.push((kind, r.matching.iter().map(|&m| m as f64).collect()));
    }
    let rs_mean = {
        let rs = &per_scheme
            .iter()
            .find(|(k, _)| *k == SchemeKind::Rs)
            .expect("rs ran")
            .1;
        rs.iter().sum::<f64>() / rs.len() as f64
    };

    let mut table = Table::new(
        "fig9b_matching",
        &["scheme", "rank_node", "matching_over_rs_mean"],
    );
    for (kind, matching) in &per_scheme {
        let normalized = move_core::normalize_to(matching, rs_mean);
        for (rank, v) in move_stats::ranked_series(&normalized) {
            table.row(&[kind.label().to_owned(), rank.to_string(), format!("{v:.3}")]);
        }
        let s = Summary::of(&normalized);
        println!(
            "{}: max/mean {:.2}, cv {:.3}, gini {:.3}",
            kind.label(),
            s.max / s.mean.max(1e-12),
            s.cv,
            s.gini
        );
    }
    table.finish();
    println!("paper: MOVE most even, RS close, IL most skewed");
}
