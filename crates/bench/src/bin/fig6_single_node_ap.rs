//! Figure 6: single-node throughput vs the P/Q split at fixed R = P×Q,
//! TREC-AP-like documents (6054.9 terms/article). Key paper observations:
//! larger P (smaller Q) gives higher pair-match throughput, except at very
//! large P where the disk knee bends the curve back; larger R costs more
//! total time.

use move_bench::{single_node_figure, Dataset, Scale};

fn main() {
    single_node_figure(Scale::from_env(), Dataset::Ap, "fig6_single_node_ap");
}
