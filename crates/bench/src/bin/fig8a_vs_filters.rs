//! Figure 8(a): cluster throughput vs the number of registered filters
//! `P ∈ [10⁵, 10⁷]` for MOVE / IL / RS. Paper: throughput falls with `P`;
//! at `P = 10⁷` the ordering is MOVE 93 > RS 70 > IL 42 docs/s.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("fig8a_vs_filters ({scale})");
    let w = Workload::paper_cluster(scale).slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new(
        "fig8a_vs_filters",
        &[
            "P_paper",
            "P",
            "scheme",
            "throughput",
            "capacity_throughput",
        ],
    );
    for p_paper in [
        100_000u64, 500_000, 1_000_000, 2_000_000, 4_000_000, 10_000_000,
    ] {
        let p = scale.count(p_paper, 100) as usize;
        let wp = w.slice_filters(p);
        let cfg = ExperimentConfig::new(paper_system(scale, 20, w.vocabulary));
        for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
            let r = run_scheme(kind, &cfg, &wp);
            table.row(&[
                p_paper.to_string(),
                p.to_string(),
                kind.label().to_owned(),
                format!("{:.2}", r.sim.throughput),
                format!("{:.2}", r.capacity_throughput),
            ]);
            println!(
                "P={p} {}: throughput {:.2} docs/s (capacity bound {:.2})",
                kind.label(),
                r.sim.throughput,
                r.capacity_throughput
            );
        }
    }
    table.finish();
    println!("paper @ P=1e7: move 93 > rs 70 > il 42");
}
