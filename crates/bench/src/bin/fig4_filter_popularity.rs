//! Figure 4: ranked filter-term popularity `pᵢ` of the MSN-like trace
//! (log-log; the paper's plot shows a heavy Zipf-like skew with top-1000
//! accumulated popularity 0.437).

use move_bench::{Dataset, Scale, Table, Workload};
use move_workload::DatasetReport;

fn main() {
    let scale = Scale::from_env();
    println!("fig4_filter_popularity ({scale})");
    let w = Workload::build(scale, Dataset::Wt, 4_000_000, 50, 42);
    let series = DatasetReport::figure4(&w.filters, w.vocabulary);

    let mut table = Table::new("fig4_filter_popularity", &["rank", "popularity"]);
    for &(rank, p) in log_sample(&series) {
        table.row(&[rank.to_string(), format!("{p:.6e}")]);
    }
    table.finish();

    // The headline statistic of the figure.
    let head: f64 = series
        .iter()
        .take(w.filter_spec.top_k)
        .map(|&(_, p)| p)
        .sum::<f64>()
        / w.filters.iter().map(move_types::Filter::len).sum::<usize>() as f64
        * w.filters.len() as f64;
    println!(
        "top-{} accumulated occurrence share: {:.3} (paper: 0.437)",
        w.filter_spec.top_k, head
    );
    println!("distinct terms: {}", series.len());
}

/// Keeps ~60 log-spaced points of a ranked series (the paper plots on a
/// log axis).
fn log_sample(series: &[(usize, f64)]) -> Vec<&(usize, f64)> {
    let n = series.len().max(1);
    let mut picks = Vec::new();
    let mut last = 0usize;
    for i in 0..60 {
        let r = ((n as f64).powf(i as f64 / 59.0)).round() as usize;
        if r > last && r <= n {
            picks.push(&series[r - 1]);
            last = r;
        }
    }
    picks
}
