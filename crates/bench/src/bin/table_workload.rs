//! "Table W": the dataset statistics quoted in §VI-A, measured on the
//! generated traces. Paper targets are printed next to each measurement.

use move_bench::{Dataset, Scale, Table, Workload};
use move_workload::DatasetReport;

fn main() {
    let scale = Scale::from_env();
    println!("table_workload ({scale})");
    let mut table = Table::new(
        "table_workload",
        &["dataset", "statistic", "paper", "measured"],
    );

    for (dataset, name, entropy, overlap, terms_per_doc) in [
        (Dataset::Ap, "trec-ap", 9.4473f64, 0.269, 6054.9f64),
        (Dataset::Wt, "trec-wt", 6.7593f64, 0.313, 64.8f64),
    ] {
        let w = Workload::build(scale, dataset, 4_000_000, 20_000, 42);
        // Both head statistics scale the paper's top-1000 by the same factor.
        let top_k = w.filter_spec.top_k.min(w.doc_spec.top_k).max(1);
        let report = DatasetReport::measure(&w.filters, &w.docs, w.vocabulary, top_k);

        let f = &report.filters;
        table.row(&row(name, "mean terms/filter", 2.843, f.mean_terms));
        table.row(&row(name, "filters ≤1 term", 0.3133, f.cumulative_123[0]));
        table.row(&row(name, "filters ≤2 terms", 0.6775, f.cumulative_123[1]));
        table.row(&row(name, "filters ≤3 terms", 0.8531, f.cumulative_123[2]));
        table.row(&row(
            name,
            "top-k filter-term occurrence share",
            0.437,
            f.top_k_occurrence_share,
        ));
        table.row(&row(
            name,
            "mean terms/doc (scaled)",
            terms_per_doc.min(w.doc_spec.mean_terms_per_doc),
            report.docs.mean_terms_per_doc,
        ));
        table.row(&row(
            name,
            "doc-frequency entropy, nats (scaled)",
            entropy.min(w.doc_spec.frequency_entropy_nats),
            report.docs.frequency_entropy_nats,
        ));
        table.row(&row(
            name,
            "top-k filter/doc overlap",
            overlap,
            report.top_k_overlap,
        ));
    }
    table.finish();
}

fn row(dataset: &str, stat: &str, paper: f64, measured: f64) -> Vec<String> {
    vec![
        dataset.to_owned(),
        stat.to_owned(),
        format!("{paper:.4}"),
        format!("{measured:.4}"),
    ]
}
