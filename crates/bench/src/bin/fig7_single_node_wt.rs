//! Figure 7: the Fig. 6 sweep on TREC-WT-like documents (64.8 terms/doc).
//! Paper observation: WT throughput exceeds AP by roughly the document-size
//! ratio (≈81.8× at R=10⁶, Q=100, against a 93× size ratio).

use move_bench::{single_node_figure, Dataset, Scale};

fn main() {
    single_node_figure(Scale::from_env(), Dataset::Wt, "fig7_single_node_wt");
}
