//! Renders the figure CSVs under `results/` into SVG charts under
//! `results/plots/` — one per paper figure, with the paper's axis scales.
//!
//! Run the figure binaries (or `./run_all_figures.sh`) first.

use move_bench::LinePlot;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// (csv, title, x, y, x-col, y-col, group-col, log_x, log_y)
type ChartSpec = (
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    Option<&'static str>,
    bool,
    bool,
);

fn main() {
    fs::create_dir_all("results/plots").expect("create results/plots");
    let mut rendered = 0;

    let charts: &[ChartSpec] = &[
        (
            "fig4_filter_popularity",
            "Fig. 4 — filter term popularity",
            "ranking id",
            "popularity",
            "rank",
            "popularity",
            None,
            true,
            true,
        ),
        (
            "fig5_doc_frequency",
            "Fig. 5 — document term frequency",
            "ranking id",
            "frequency rate",
            "rank",
            "frequency_rate",
            Some("dataset"),
            true,
            true,
        ),
        (
            "fig6_single_node_ap",
            "Fig. 6 — single node (AP)",
            "Q: num. of docs",
            "pair throughput",
            "Q_docs",
            "pair_throughput_model",
            Some("R"),
            true,
            true,
        ),
        (
            "fig7_single_node_wt",
            "Fig. 7 — single node (WT)",
            "Q: num. of docs",
            "pair throughput",
            "Q_docs",
            "pair_throughput_model",
            Some("R"),
            true,
            true,
        ),
        (
            "fig8a_vs_filters",
            "Fig. 8(a) — throughput vs filters",
            "P: num. of filters",
            "throughput (docs/s)",
            "P",
            "capacity_throughput",
            Some("scheme"),
            true,
            false,
        ),
        (
            "fig8b_vs_docs",
            "Fig. 8(b) — throughput vs batch size",
            "Q: num. of docs",
            "throughput (docs/s)",
            "Q_docs",
            "throughput",
            Some("scheme"),
            true,
            false,
        ),
        (
            "fig8c_vs_nodes",
            "Fig. 8(c) — throughput vs nodes",
            "N: num. of nodes",
            "throughput (docs/s)",
            "N_nodes",
            "capacity_throughput",
            Some("scheme"),
            false,
            false,
        ),
        (
            "fig9a_storage",
            "Fig. 9(a) — storage cost distribution",
            "ranking node id",
            "storage / RS mean",
            "rank_node",
            "storage_over_rs_mean",
            Some("scheme"),
            false,
            false,
        ),
        (
            "fig9b_matching",
            "Fig. 9(b) — matching cost distribution",
            "ranking node id",
            "matching / RS mean",
            "rank_node",
            "matching_over_rs_mean",
            Some("scheme"),
            false,
            false,
        ),
    ];

    for &(csv, title, xl, yl, xcol, ycol, group, log_x, log_y) in charts {
        let path = format!("results/{csv}.csv");
        let Some(rows) = read_csv(Path::new(&path)) else {
            eprintln!("skipping {csv}: no {path} (run the figure binary first)");
            continue;
        };
        let mut plot = LinePlot::new(title, xl, yl).log_axes(log_x, log_y);
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for row in &rows {
            let (Some(x), Some(y)) = (get_f64(row, xcol), get_f64(row, ycol)) else {
                continue;
            };
            let key = match group {
                Some(g) => row.get(g).cloned().unwrap_or_default(),
                None => String::new(),
            };
            groups.entry(key).or_default().push((x, y));
        }
        for (name, mut pts) in groups {
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            plot = plot.series(if name.is_empty() { "series" } else { &name }, &pts);
        }
        let out = format!("results/plots/{csv}.svg");
        fs::write(&out, plot.to_svg()).expect("write svg");
        println!("wrote {out}");
        rendered += 1;
    }
    println!("{rendered} charts rendered");
}

fn read_csv(path: &Path) -> Option<Vec<BTreeMap<String, String>>> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header: Vec<String> = lines.next()?.split(',').map(str::to_owned).collect();
    Some(
        lines
            .map(|l| {
                header
                    .iter()
                    .cloned()
                    .zip(l.split(',').map(str::to_owned))
                    .collect()
            })
            .collect(),
    )
}

fn get_f64(row: &BTreeMap<String, String>, col: &str) -> Option<f64> {
    row.get(col)?.parse().ok()
}
