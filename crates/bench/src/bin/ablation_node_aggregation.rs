//! Ablation: §V's node-level statistics aggregation. The paper rejects
//! per-term forwarding tables because "the number Tᵢ of terms maintained by
//! the node mᵢ is correspondingly large … the associated maintenance cost
//! is nontrivial", and keeps exactly one 2-D array per node. This ablation
//! quantifies the trade: per-term grids vs per-node grids, comparing
//! throughput against the number of forwarding tables (and their entries)
//! the cluster must maintain and move.

use move_bench::{paper_system, run_stream, ExperimentConfig, Scale, Table, Workload};
use move_core::{Dissemination, MoveScheme};

fn main() {
    let scale = Scale::from_env();
    println!("ablation_node_aggregation ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let cfg = ExperimentConfig::new(paper_system(scale, 20, w.vocabulary));
    let mut table = Table::new(
        "ablation_node_aggregation",
        &["aggregation", "throughput", "tables", "table_entries"],
    );

    for per_term in [false, true] {
        let mut scheme = MoveScheme::new(cfg.system.clone()).expect("valid config");
        scheme.set_factor_rule(cfg.rule);
        for f in &w.filters {
            scheme.register(f).expect("registration cannot fail");
        }
        scheme.observe_corpus(&w.sample);
        if per_term {
            scheme.allocate_per_term().expect("allocation fits");
        } else {
            scheme.allocate().expect("allocation fits");
        }
        let (tables, entries) = scheme.forwarding_tables();
        let r = run_stream(&mut scheme, &cfg, &w.docs);
        let name = if per_term {
            "per-term"
        } else {
            "per-node (§V)"
        };
        table.row(&[
            name.to_owned(),
            format!("{:.2}", r.capacity_throughput),
            tables.to_string(),
            entries.to_string(),
        ]);
        println!(
            "{name}: throughput {:.2}, {tables} tables / {entries} entries",
            r.capacity_throughput
        );
    }
    table.finish();
    println!(
        "paper §V: node aggregation keeps one table per node at a modest throughput cost \
         (per-term grids target hot terms more precisely but multiply maintenance state)"
    );
}
