//! Ablation: §IV-A's claim that "neither the replication nor separation
//! scheme alone can minimize the latency". Forces MOVE's grids into pure
//! replication (`rᵢ = 1/nᵢ`), pure separation (`rᵢ = 1`), and disables
//! allocation entirely, against the combined capacity-driven grids.
//!
//! Two capacity regimes: with *ample* per-node capacity the optimal grid
//! degenerates to pure replication (exactly the paper's §IV-B2 analysis —
//! `rᵢ = 1/nᵢ` is optimal when `C ≥ pᵢ·P`), so the combined scheme ties it
//! and separation loses. With *tight* capacity (the disk knee close to
//! `C`), pure replication overfills nodes and pays disk speeds, and only
//! the combined grid keeps both the document and the storage balance.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};
use move_core::GridMode;
use move_stats::Summary;

fn main() {
    let scale = Scale::from_env();
    println!("ablation_allocation ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new(
        "ablation_allocation",
        &[
            "capacity",
            "variant",
            "throughput",
            "storage_cv",
            "max_storage_over_c",
        ],
    );
    let variants: [(&str, Option<GridMode>); 4] = [
        ("combined (move)", Some(GridMode::Optimal)),
        ("pure replication", Some(GridMode::PureReplication)),
        ("pure separation", Some(GridMode::PureSeparation)),
        ("no allocation", None),
    ];
    for (regime, capacity_base, knee_factor) in
        [("ample", 3_000_000u64, 4.0f64), ("tight", 1_100_000, 1.2)]
    {
        let capacity = scale.count(capacity_base, 1_000);
        for (name, mode) in variants {
            let mut system = paper_system(scale, 20, w.vocabulary);
            system.capacity_per_node = capacity;
            system.cost.mem_capacity = (capacity as f64 * knee_factor) as u64;
            let mut cfg = ExperimentConfig::new(system);
            match mode {
                Some(m) => cfg.grid_mode = m,
                None => cfg.allocate = false,
            }
            let r = run_scheme(SchemeKind::Move, &cfg, &w);
            let storage: Vec<f64> = r.storage.iter().map(|&s| s as f64).collect();
            let max_over_c = storage.iter().fold(0.0f64, |a, &b| a.max(b)) / capacity as f64;
            table.row(&[
                regime.to_owned(),
                name.to_owned(),
                format!("{:.2}", r.capacity_throughput),
                format!("{:.3}", Summary::of(&storage).cv),
                format!("{max_over_c:.2}"),
            ]);
            println!("[{regime}] {name}: throughput {:.2}", r.capacity_throughput);
        }
    }
    table.finish();
    println!("paper §IV-A: with capacity pressure, neither pure scheme alone suffices");
}
