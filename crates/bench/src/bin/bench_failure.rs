//! Live-engine re-measurement of Figures 9(c)/9(d): wall-clock throughput
//! and delivered-pair availability under a seeded kill-30% [`FaultPlan`],
//! comparing the three §V placements (MOVE hybrid, ring, rack) with
//! replica failover, against their own fault-free baselines and against
//! the degraded simulator's `filter_availability` prediction for the
//! identical placement and dead set. Emits `results/BENCH_failure.json`.
//!
//! The simulator's Fig. 9c models a disk-bound 2012 cluster in virtual
//! time; these numbers measure real threads draining real mailboxes while
//! 30% of them are crashed mid-run — what carries over is the *relative*
//! cost of failure per placement, not the absolute docs/s.

use move_bench::{paper_system, Scale, Table, Workload};
use move_core::{Dissemination, MoveScheme, PlacementStrategy};
use move_runtime::{Engine, FaultPlan, RuntimeConfig, RuntimeReport, SupervisionPolicy};
use serde::Serialize;
use std::time::Instant;

const NODES: usize = 20;
const PLAN_SEED: u64 = 0x9C0;

#[derive(Serialize)]
struct FailureRun {
    placement: &'static str,
    failure_rate: f64,
    nodes_killed: usize,
    elapsed_secs: f64,
    throughput_docs_per_sec: f64,
    delivered_pairs: u64,
    /// Delivered pairs relative to this placement's own fault-free run —
    /// the live Fig. 9d metric.
    delivered_ratio: f64,
    /// The degraded sim's `filter_availability` on the same dead set —
    /// the Fig. 9d prediction this run is compared against.
    sim_availability: f64,
    report: RuntimeReport,
}

#[derive(Serialize)]
struct BenchReport {
    scale: f64,
    nodes: usize,
    filters: usize,
    docs: usize,
    kill_fraction: f64,
    plan_seed: u64,
    runs: Vec<FailureRun>,
}

/// Builds the §V allocated scheme for `placement`; deterministic, so the
/// sim-side prediction below sees byte-identical grids.
fn allocated(placement: PlacementStrategy, scale: Scale, w: &Workload) -> MoveScheme {
    let mut system = paper_system(scale, NODES, w.vocabulary);
    system.placement = placement;
    let mut scheme = MoveScheme::new(system).expect("valid config");
    // The paper's own §V allocation rule (near-uniform nᵢ ⇒ rack-sized
    // grids), the regime where the ring/rack/hybrid trade-off is visible.
    scheme.set_factor_rule(move_core::FactorRule::SqrtPQ);
    for f in &w.filters {
        scheme.register(f).expect("registration cannot fail");
    }
    scheme.observe_corpus(&w.sample);
    scheme.allocate().expect("allocation fits");
    scheme
}

fn main() {
    let scale = Scale::from_env();
    println!("bench_failure ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(1_000_000, 200) as usize)
        .slice_docs(scale.count(100_000, 400) as usize);
    let kill_at = w.docs.len() as u64 / 4;
    let rt = RuntimeConfig {
        supervision: SupervisionPolicy::failover(),
        ..RuntimeConfig::default()
    };

    let mut table = Table::new(
        "bench_failure",
        &[
            "placement",
            "rate",
            "elapsed_s",
            "docs_per_s",
            "pairs",
            "ratio",
            "sim_avail",
            "failovers",
            "lost",
        ],
    );
    // One untimed engine run so thread spawn and allocator warm-up don't
    // land on the first measured cell.
    {
        let scheme = allocated(PlacementStrategy::Hybrid, scale, &w);
        let engine = Engine::start_with_faults(Box::new(scheme), rt.clone(), FaultPlan::none())
            .expect("spawn engine threads");
        for d in w.docs.iter().take(w.docs.len() / 10) {
            engine.publish(d.clone());
        }
        engine.flush();
        drop(engine.shutdown());
    }

    let mut runs = Vec::new();
    for (placement, label) in [
        (PlacementStrategy::Hybrid, "move"),
        (PlacementStrategy::Ring, "ring"),
        (PlacementStrategy::Rack, "rack"),
    ] {
        let mut baseline_pairs = 0u64;
        for failure_rate in [0.0f64, 0.3] {
            let plan = if failure_rate > 0.0 {
                FaultPlan::kill_fraction(NODES, failure_rate, kill_at, PLAN_SEED)
            } else {
                FaultPlan::none()
            };
            let dead = plan.crashed_nodes();

            // The sim-side Fig. 9d prediction on the identical dead set.
            let sim_availability = {
                let mut sim = allocated(placement, scale, &w);
                for &n in &dead {
                    sim.cluster_mut().membership_mut().crash(n);
                }
                sim.filter_availability()
            };

            let scheme = allocated(placement, scale, &w);
            let engine = Engine::start_with_faults(Box::new(scheme), rt.clone(), plan)
                .expect("spawn engine threads");
            let deliveries = engine.deliveries();
            let start = Instant::now();
            for d in &w.docs {
                engine.publish(d.clone());
            }
            engine.flush();
            let elapsed = start.elapsed().as_secs_f64();
            let report = engine.shutdown().expect("engine ran to completion");

            let delivered_pairs: u64 = deliveries.try_iter().map(|d| d.matched.len() as u64).sum();
            if failure_rate == 0.0 {
                baseline_pairs = delivered_pairs;
            }
            let delivered_ratio = if baseline_pairs == 0 {
                1.0
            } else {
                delivered_pairs as f64 / baseline_pairs as f64
            };
            let throughput = w.docs.len() as f64 / elapsed;
            table.row(&[
                label.to_owned(),
                format!("{failure_rate}"),
                format!("{elapsed:.3}"),
                format!("{throughput:.0}"),
                delivered_pairs.to_string(),
                format!("{delivered_ratio:.4}"),
                format!("{sim_availability:.4}"),
                report.failovers.to_string(),
                report.lost_docs.len().to_string(),
            ]);
            println!(
                "{label} @ {failure_rate}: {} docs in {elapsed:.3}s wall = {throughput:.0} docs/s; \
                 {delivered_pairs} pairs (ratio {delivered_ratio:.4}, sim availability \
                 {sim_availability:.4}); {} failovers, {} retries, {} docs lost",
                w.docs.len(),
                report.failovers,
                report.retries,
                report.lost_docs.len(),
            );
            runs.push(FailureRun {
                placement: label,
                failure_rate,
                nodes_killed: dead.len(),
                elapsed_secs: elapsed,
                throughput_docs_per_sec: throughput,
                delivered_pairs,
                delivered_ratio,
                sim_availability,
                report,
            });
        }
    }
    table.finish();

    let bench = BenchReport {
        scale: scale.factor,
        nodes: NODES,
        filters: w.filters.len(),
        docs: w.docs.len(),
        kill_fraction: 0.3,
        plan_seed: PLAN_SEED,
        runs,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_failure.json", json).expect("write json report");
    println!("wrote results/BENCH_failure.json");
    println!("paper: failover keeps delivering on replica rows; hybrid balances cost and coverage");
}
