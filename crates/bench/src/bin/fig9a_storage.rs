//! Figure 9(a): ranked per-node storage cost, normalized to the RS scheme's
//! mean. Paper: RS (consistent hashing) is most even, MOVE close behind
//! (its allocation also weighs `qᵢ`, so it does not flatten storage
//! completely), IL most skewed.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};
use move_stats::Summary;

fn main() {
    let scale = Scale::from_env();
    println!("fig9a_storage ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let cfg = ExperimentConfig::new(paper_system(scale, 20, w.vocabulary));

    let mut per_scheme: Vec<(SchemeKind, Vec<f64>)> = Vec::new();
    for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
        let r = run_scheme(kind, &cfg, &w);
        per_scheme.push((kind, r.storage.iter().map(|&s| s as f64).collect()));
    }
    let rs_mean = {
        let rs = &per_scheme
            .iter()
            .find(|(k, _)| *k == SchemeKind::Rs)
            .expect("rs ran")
            .1;
        rs.iter().sum::<f64>() / rs.len() as f64
    };

    let mut table = Table::new(
        "fig9a_storage",
        &["scheme", "rank_node", "storage_over_rs_mean"],
    );
    for (kind, storage) in &per_scheme {
        let normalized = move_core::normalize_to(storage, rs_mean);
        for (rank, v) in move_stats::ranked_series(&normalized) {
            table.row(&[kind.label().to_owned(), rank.to_string(), format!("{v:.3}")]);
        }
        let s = Summary::of(&normalized);
        println!(
            "{}: max/mean {:.2}, cv {:.3}, gini {:.3}",
            kind.label(),
            s.max / s.mean.max(1e-12),
            s.cv,
            s.gini
        );
    }
    table.finish();
    println!("paper: RS most even, MOVE nearly as even, IL most skewed");
}
