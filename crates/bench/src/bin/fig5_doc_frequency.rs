//! Figure 5: ranked document-term frequency rates for the TREC-AP-like and
//! TREC-WT-like corpora (the paper plots the top-10⁵ rates and reports the
//! entropies 9.4473 / 6.7593, WT being the skewer trace).

use move_bench::{Dataset, Scale, Table, Workload};
use move_workload::{DatasetReport, DocReport};

fn main() {
    let scale = Scale::from_env();
    println!("fig5_doc_frequency ({scale})");
    let mut table = Table::new("fig5_doc_frequency", &["dataset", "rank", "frequency_rate"]);
    for (dataset, name) in [(Dataset::Ap, "trec-ap"), (Dataset::Wt, "trec-wt")] {
        let w = Workload::build(scale, dataset, 10_000, 20_000, 42);
        let series = DatasetReport::figure5(&w.docs, w.vocabulary);
        for &(rank, q) in log_sample(&series) {
            table.row(&[name.to_owned(), rank.to_string(), format!("{q:.6e}")]);
        }
        let report = DocReport::measure(&w.docs, w.vocabulary);
        println!(
            "{name}: entropy {:.4} nats (design target {:.4}), {} distinct terms",
            report.frequency_entropy_nats, w.doc_spec.frequency_entropy_nats, report.distinct_terms
        );
    }
    table.finish();
}

fn log_sample(series: &[(usize, f64)]) -> Vec<&(usize, f64)> {
    let n = series.len().max(1);
    let mut picks = Vec::new();
    let mut last = 0usize;
    for i in 0..60 {
        let r = ((n as f64).powf(i as f64 / 59.0)).round() as usize;
        if r > last && r <= n {
            picks.push(&series[r - 1]);
            last = r;
        }
    }
    picks
}
