//! Figure 8(c): cluster throughput vs the number of nodes `N ∈ [5, 100]`.
//! Paper: every scheme gains with more nodes (fewer filters and documents
//! per node), MOVE on top throughout.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("fig8c_vs_nodes ({scale})");
    // Paper defaults: P = 4×10⁶ filters, Q = 10³ docs, WT documents.
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new(
        "fig8c_vs_nodes",
        &["N_nodes", "scheme", "throughput", "capacity_throughput"],
    );
    for n in [5usize, 10, 20, 40, 60, 80, 100] {
        let cfg = ExperimentConfig::new(paper_system(scale, n, w.vocabulary));
        for kind in [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs] {
            let r = run_scheme(kind, &cfg, &w);
            table.row(&[
                n.to_string(),
                kind.label().to_owned(),
                format!("{:.2}", r.sim.throughput),
                format!("{:.2}", r.capacity_throughput),
            ]);
        }
        println!("N={n} done");
    }
    table.finish();
    println!("paper: monotone gains with N for all three schemes");
}
