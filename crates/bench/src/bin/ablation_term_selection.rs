//! Ablation: term-selection on the *registration* side (the STAIRS [17, 21]
//! idea the paper discusses). Under similarity-threshold semantics `θ`, a
//! filter only needs to be registered under its `|f| − ⌈θ|f|⌉ + 1` rarest
//! terms (pigeonhole) — for conjunctive matching a single registration per
//! filter suffices. Deliveries must be identical; storage and posting
//! traffic shrink. The paper's throughput-motivated design keeps all-terms
//! registration because its evaluation is boolean, where selection is
//! impossible; this ablation maps the regime where selection *does* pay.

use move_bench::{paper_system, run_stream, ExperimentConfig, Scale, Table, Workload};
use move_core::{Dissemination, IlScheme, RegistrationMode};
use move_types::MatchSemantics;

fn main() {
    let scale = Scale::from_env();
    println!("ablation_term_selection ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new(
        "ablation_term_selection",
        &[
            "threshold",
            "mode",
            "throughput",
            "stored_pairs",
            "deliveries",
        ],
    );
    for threshold in [0.5f64, 1.0] {
        for (name, mode) in [
            ("all-terms", RegistrationMode::AllTerms),
            ("needed-terms", RegistrationMode::NeededTerms),
        ] {
            let mut system = paper_system(scale, 20, w.vocabulary);
            system.semantics = MatchSemantics::similarity_threshold(threshold);
            let cfg = ExperimentConfig::new(system.clone());
            let mut scheme = IlScheme::new(system).expect("valid config");
            scheme.set_registration_mode(mode);
            for f in &w.filters {
                scheme.register(f).expect("registration cannot fail");
            }
            let stored: u64 = scheme.storage_per_node().iter().sum();
            let r = run_stream(&mut scheme, &cfg, &w.docs);
            table.row(&[
                format!("{threshold}"),
                name.to_owned(),
                format!("{:.2}", r.capacity_throughput),
                stored.to_string(),
                r.deliveries.to_string(),
            ]);
            println!(
                "θ={threshold} {name}: throughput {:.2}, {stored} pairs, {} deliveries",
                r.capacity_throughput, r.deliveries
            );
        }
    }
    table.finish();
    println!("expectation: identical deliveries per threshold; needed-terms stores fewer pairs");
}
