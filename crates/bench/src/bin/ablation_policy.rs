//! Ablation: §V's allocation policies. The proactive policy allocates from
//! an offline corpus sample before documents flow; the passive policy
//! learns from live traffic and reorganizes mid-stream — paying the
//! movement on an already-hot node, as the paper warns.

use move_bench::{paper_system, Scale, Table, Workload};
use move_cluster::QueueSim;
use move_core::{AllocationPolicy, Dissemination, MoveScheme};

fn main() {
    let scale = Scale::from_env();
    println!("ablation_policy ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(200_000, 1_000) as usize);
    let mut table = Table::new("ablation_policy", &["policy", "window", "throughput"]);
    let windows = 4usize;
    let per_window = w.docs.len() / windows;
    for (name, policy) in [
        ("proactive", AllocationPolicy::Proactive),
        ("passive", AllocationPolicy::Passive),
    ] {
        let mut system = paper_system(scale, 20, w.vocabulary);
        system.allocation_policy = policy;
        system.refresh_every_docs = per_window as u64;
        let mut scheme = MoveScheme::new(system.clone()).expect("valid config");
        for f in &w.filters {
            scheme.register(f).expect("registration cannot fail");
        }
        if policy == AllocationPolicy::Proactive {
            scheme.observe_corpus(&w.sample);
            scheme.allocate().expect("allocation fits");
        }
        for win in 0..windows {
            scheme.cluster_mut().ledgers_mut().reset();
            let docs = &w.docs[win * per_window..(win + 1) * per_window];
            let mut jobs = Vec::with_capacity(docs.len());
            for d in docs {
                jobs.push(scheme.publish(0.0, d).expect("publish").job);
            }
            let sim = QueueSim::new().run(system.nodes, &jobs);
            table.row(&[
                name.to_owned(),
                win.to_string(),
                format!("{:.2}", sim.throughput),
            ]);
            println!("{name} window {win}: {:.2} docs/s", sim.throughput);
        }
    }
    table.finish();
    println!("expectation: passive starts at IL-level throughput and converges upward after its first reorganization");
}
