//! Ablation: §V's Bloom-filter term-membership check ("helps reduce the
//! forwarding cost"). Runs the IL dissemination path with and without the
//! check on a sparse filter set (so many document terms have no filters at
//! all), comparing forwarding volume and throughput.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("ablation_bloom ({scale})");
    // A tenth of the usual filters: most vocabulary terms are unregistered,
    // which is where the membership check earns its keep.
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(400_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new(
        "ablation_bloom",
        &["variant", "throughput", "lists_retrieved", "deliveries"],
    );
    for (name, use_bloom) in [("with bloom", true), ("without bloom", false)] {
        let mut system = paper_system(scale, 20, w.vocabulary);
        system.use_bloom = use_bloom;
        let cfg = ExperimentConfig::new(system);
        let r = run_scheme(SchemeKind::Il, &cfg, &w);
        let lists: u64 = r.sim.node_tasks.iter().sum();
        table.row(&[
            name.to_owned(),
            format!("{:.2}", r.capacity_throughput),
            lists.to_string(),
            r.deliveries.to_string(),
        ]);
        println!(
            "{name}: throughput {:.2}, tasks {lists}, deliveries {}",
            r.capacity_throughput, r.deliveries
        );
    }
    table.finish();
    println!("expectation: identical deliveries, fewer forwards and higher throughput with the bloom check");
}
