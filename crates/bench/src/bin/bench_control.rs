//! Control-plane benchmark: storage and churn throughput of the
//! filter-aggregation layer (DESIGN.md §12) at million-subscriber scale.
//!
//! A Zipf-popular predicate pool ([`move_workload::ChurnWorkload`]) drives
//! a population of subscribers whose predicates heavily alias each other —
//! the regime aggregation exists for. For every scheme the harness runs an
//! *aggregated* configuration against its *verbatim* twin
//! (`aggregate_filters = false`, the pre-aggregation baseline) fed the
//! identical operation sequence, and reports per mode:
//!
//! * **bytes/filter** — posting-index bytes across all nodes plus the
//!   aggregation layer's own bookkeeping, over the live population;
//! * **registrations/sec**, **unregistrations/sec** — single-threaded
//!   control-operation rates over a sustained churn burst;
//! * **docs/sec-under-churn** — live-engine publish throughput while the
//!   population turns over concurrently through the engine's control
//!   plane.
//!
//! Two hard gates ride in the report and are enforced by
//! `cargo run -p xtask -- check-bench results/BENCH_control.json`:
//! `deliveries_match` (aggregated deliveries byte-identical to both the
//! verbatim twin and the brute-force oracle at every probed document) and
//! `bytes_reduction >= 4` (aggregation must cut storage at least 4× under
//! the pool's 20× aliasing).

use move_bench::{paper_system, Dataset, Scale, SchemeKind, Table, Workload};
use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use move_index::brute_force;
use move_runtime::{Engine, RuntimeConfig};
use move_types::{Document, Filter, FilterId, MatchSemantics, NodeId};
use move_workload::{ChurnOp, ChurnSpec, ChurnWorkload, MsnSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

#[derive(Serialize)]
struct ControlRun {
    scheme: &'static str,
    /// `aggregated` = canonical predicates + fan-out sets;
    /// `verbatim` = one posting set per subscription (the baseline).
    mode: &'static str,
    subscribers: u64,
    /// Distinct canonical predicates live after the churn burst (equals
    /// the subscriber count in verbatim mode).
    canonical_filters: u64,
    /// (Σ node posting-index bytes + aggregation bookkeeping bytes) per
    /// live subscriber, after the churn burst.
    bytes_per_filter: f64,
    /// Verbatim `bytes_per_filter` over this run's — only on aggregated
    /// runs, patched once the twin has run.
    #[serde(skip_serializing_if = "Option::is_none")]
    bytes_reduction: Option<f64>,
    /// Wall seconds to bulk-register the initial population (sim-side).
    bulk_register_secs: f64,
    registrations_per_sec: f64,
    unregistrations_per_sec: f64,
    /// Live-engine publish throughput with churn applied concurrently
    /// through the control plane.
    docs_per_sec_under_churn: f64,
    /// Fraction of live registrations that hit an already-live canonical
    /// (Subscribe fast path; 0 in verbatim mode).
    canonical_hit_rate: f64,
    /// Aggregated deliveries byte-identical to the verbatim twin and the
    /// brute-force oracle on every probed document.
    deliveries_match: bool,
}

#[derive(Serialize)]
struct ControlReport {
    scale: f64,
    nodes: usize,
    subscribers: u64,
    predicate_pool: usize,
    churn_ticks: usize,
    docs: usize,
    runs: Vec<ControlRun>,
}

type DeliveryMap = BTreeMap<u64, Vec<FilterId>>;

/// Builds a scheme, bulk-registers the initial population (timed), and for
/// MOVE runs the offline observation + proactive allocation (untimed, as
/// in the paper's setup phase).
fn setup_scheme(
    kind: SchemeKind,
    system: &SystemConfig,
    initial: &[Filter],
    sample: &[Document],
) -> (Box<dyn Dissemination + Send>, f64) {
    match kind {
        SchemeKind::Move => {
            let mut m = MoveScheme::new(system.clone()).expect("valid config");
            let t0 = Instant::now();
            for f in initial {
                m.register(f).expect("bulk register");
            }
            let secs = t0.elapsed().as_secs_f64();
            m.observe_corpus(sample);
            m.allocate().expect("allocation fits");
            (Box::new(m), secs)
        }
        SchemeKind::Il => {
            let mut s = IlScheme::new(system.clone()).expect("valid config");
            let t0 = Instant::now();
            for f in initial {
                s.register(f).expect("bulk register");
            }
            (Box::new(s), t0.elapsed().as_secs_f64())
        }
        SchemeKind::Rs => {
            let mut s = RsScheme::new(system.clone()).expect("valid config");
            let t0 = Instant::now();
            for f in initial {
                s.register(f).expect("bulk register");
            }
            (Box::new(s), t0.elapsed().as_secs_f64())
        }
    }
}

/// Applies one churn op to a sim-side scheme, keeping verbatim mode
/// semantically identical to aggregated mode: the aggregation layer
/// displaces a re-registering subscriber internally, the verbatim baseline
/// needs the explicit leave-then-join.
fn apply_sim(scheme: &mut dyn Dissemination, live: &mut BTreeSet<u64>, op: &ChurnOp) {
    match op {
        ChurnOp::Register(f) => {
            if !live.insert(f.id().0) {
                scheme.unregister(f.id()).expect("displace");
            }
            scheme.register(f).expect("register");
        }
        ChurnOp::Unregister(id) => {
            live.remove(&id.0);
            scheme.unregister(*id).expect("unregister");
        }
    }
}

/// Posting-index bytes across the cluster plus the aggregation layer's
/// own maps, per live subscriber.
fn bytes_per_filter(scheme: &dyn Dissemination) -> f64 {
    let nodes = scheme.cluster().len();
    let index_bytes: u64 = (0..nodes)
        .map(|n| scheme.node_index(NodeId(n as u32)).estimated_bytes() as u64)
        .sum();
    let total = index_bytes + scheme.aggregation_bytes();
    total as f64 / scheme.registered_filters().max(1) as f64
}

struct RunOutput {
    run: ControlRun,
    deliveries: DeliveryMap,
}

#[allow(clippy::too_many_arguments)]
fn run_mode(
    kind: SchemeKind,
    system: &SystemConfig,
    churn: &ChurnWorkload,
    seed: u64,
    sample: &[Document],
    oracle_docs: &[Document],
    live_docs: &[Document],
    ticks: usize,
    aggregated: bool,
) -> RunOutput {
    let mut churn = churn.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut system = system.clone();
    system.aggregate_filters = aggregated;
    let mode = if aggregated { "aggregated" } else { "verbatim" };

    // Phase 1: bulk registration of the initial population, timed.
    let initial = churn.initial_filters();
    let mut live: BTreeSet<u64> = initial.iter().map(|f| f.id().0).collect();
    let (mut scheme, bulk_register_secs) = setup_scheme(kind, &system, &initial, sample);

    // Phase 2: sustained churn burst, each control op timed individually —
    // the single-threaded control-plane op rates.
    let (mut regs, mut unregs) = (0u64, 0u64);
    let (mut reg_secs, mut unreg_secs) = (0.0f64, 0.0f64);
    for _ in 0..ticks {
        for op in churn.tick(&mut rng) {
            let t = Instant::now();
            apply_sim(scheme.as_mut(), &mut live, &op);
            let dt = t.elapsed().as_secs_f64();
            match op {
                ChurnOp::Register(_) => {
                    regs += 1;
                    reg_secs += dt;
                }
                ChurnOp::Unregister(_) => {
                    unregs += 1;
                    unreg_secs += dt;
                }
            }
        }
    }
    let bpf = bytes_per_filter(scheme.as_ref());
    let canonical_filters = scheme.canonical_filters();

    // Phase 3: delivery oracle — churn keeps running between probe
    // documents, every delivery set is checked byte-for-byte against the
    // brute-force match over the live population, and the map is kept for
    // the aggregated-vs-verbatim comparison.
    let mut deliveries = DeliveryMap::new();
    let mut oracle_ok = true;
    for (i, d) in oracle_docs.iter().enumerate() {
        if i % 8 == 7 {
            for op in churn.tick(&mut rng) {
                apply_sim(scheme.as_mut(), &mut live, &op);
            }
        }
        let got = scheme.publish(0.0, d).expect("publish").matched;
        let population: Vec<Filter> = churn.live().collect();
        let want = brute_force(&population, d, MatchSemantics::Boolean);
        if got != want {
            oracle_ok = false;
        }
        deliveries.insert(d.id().0, got);
    }

    // Phase 4: live engine under churn — publish throughput while the
    // population turns over through the engine's control plane.
    let engine = Engine::start(scheme, RuntimeConfig::default()).expect("engine starts");
    let chunk = live_docs.len().div_ceil(ticks.max(1)).max(1);
    let t0 = Instant::now();
    for docs in live_docs.chunks(chunk) {
        for op in churn.tick(&mut rng) {
            match op {
                ChurnOp::Register(f) => {
                    // The live router displaces re-registrations itself in
                    // aggregated mode; verbatim needs the explicit leave.
                    if !live.insert(f.id().0) && !aggregated {
                        engine.unregister(f.id());
                    }
                    engine.register(f);
                }
                ChurnOp::Unregister(id) => {
                    live.remove(&id.0);
                    engine.unregister(id);
                }
            }
        }
        for d in docs {
            engine.publish(d.clone());
        }
    }
    engine.flush();
    let live_elapsed = t0.elapsed().as_secs_f64();
    let report = engine.shutdown().expect("clean shutdown");
    let canonical_hit_rate = report.canonical_hits as f64 / report.registrations.max(1) as f64;

    RunOutput {
        run: ControlRun {
            scheme: kind.label(),
            mode,
            subscribers: live.len() as u64,
            canonical_filters,
            bytes_per_filter: bpf,
            bytes_reduction: None,
            bulk_register_secs,
            registrations_per_sec: regs as f64 / reg_secs.max(1e-9),
            unregistrations_per_sec: unregs as f64 / unreg_secs.max(1e-9),
            docs_per_sec_under_churn: live_docs.len() as f64 / live_elapsed.max(1e-9),
            canonical_hit_rate,
            deliveries_match: oracle_ok,
        },
        deliveries,
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("bench_control ({scale})");
    let nodes = 20;
    let seed = 42u64;
    // Documents (and the shared vocabulary) come from the standard
    // WT-calibrated generator; the filter side is the churn pool.
    let w = Workload::build(scale, Dataset::Wt, 1_000, 100_000, seed);
    let subscribers = scale.count(1_000_000, 2_000);
    let spec = ChurnSpec {
        subscribers,
        predicate_pool: ((subscribers / 20).max(8) as usize).min(50_000),
        filter_spec: MsnSpec::scaled(w.vocabulary),
        ..ChurnSpec::paper()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let churn = ChurnWorkload::new(&spec, &mut rng).expect("churn spec is feasible");
    let system = paper_system(scale, nodes, w.vocabulary);
    let oracle_docs: Vec<Document> = w.docs.iter().take(64).cloned().collect();
    let live_docs: Vec<Document> = w
        .docs
        .iter()
        .skip(oracle_docs.len())
        .take(scale.count(20_000, 400) as usize)
        .cloned()
        .collect();
    let ticks = 6;

    let mut table = Table::new(
        "bench_control",
        &[
            "scheme",
            "mode",
            "subscribers",
            "canonicals",
            "bytes_per_filter",
            "reg_per_s",
            "unreg_per_s",
            "docs_per_s",
            "hit_rate",
            "match",
        ],
    );
    let mut runs: Vec<ControlRun> = Vec::new();
    for kind in [SchemeKind::Rs, SchemeKind::Il, SchemeKind::Move] {
        let mut pair: Vec<RunOutput> = Vec::new();
        for aggregated in [true, false] {
            pair.push(run_mode(
                kind,
                &system,
                &churn,
                seed,
                &w.sample,
                &oracle_docs,
                &live_docs,
                ticks,
                aggregated,
            ));
        }
        let twins_match = pair[0].deliveries == pair[1].deliveries;
        let verbatim_bpf = pair[1].run.bytes_per_filter;
        for (i, mut out) in pair.into_iter().enumerate() {
            out.run.deliveries_match &= twins_match;
            if i == 0 {
                out.run.bytes_reduction = Some(verbatim_bpf / out.run.bytes_per_filter.max(1e-9));
            }
            table.row(&[
                out.run.scheme.to_owned(),
                out.run.mode.to_owned(),
                out.run.subscribers.to_string(),
                out.run.canonical_filters.to_string(),
                format!("{:.1}", out.run.bytes_per_filter),
                format!("{:.0}", out.run.registrations_per_sec),
                format!("{:.0}", out.run.unregistrations_per_sec),
                format!("{:.0}", out.run.docs_per_sec_under_churn),
                format!("{:.3}", out.run.canonical_hit_rate),
                out.run.deliveries_match.to_string(),
            ]);
            println!(
                "{}/{}: {:.1} B/filter{}, {:.0} reg/s, {:.0} unreg/s, {:.0} docs/s \
                 under churn, hit rate {:.3}, deliveries_match {}",
                out.run.scheme,
                out.run.mode,
                out.run.bytes_per_filter,
                out.run
                    .bytes_reduction
                    .map(|r| format!(" ({r:.1}x reduction)"))
                    .unwrap_or_default(),
                out.run.registrations_per_sec,
                out.run.unregistrations_per_sec,
                out.run.docs_per_sec_under_churn,
                out.run.canonical_hit_rate,
                out.run.deliveries_match,
            );
            runs.push(out.run);
        }
    }
    table.finish();

    let bench = ControlReport {
        scale: scale.factor,
        nodes,
        subscribers,
        predicate_pool: spec.predicate_pool,
        churn_ticks: ticks,
        docs: live_docs.len(),
        runs,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_control.json", json).expect("write json report");
    println!("wrote results/BENCH_control.json");
}
