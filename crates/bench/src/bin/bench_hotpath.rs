//! Hot-path microbenchmark: docs/sec and per-document match latency for
//! IL, RS, and MOVE through both the single-threaded simulator publish
//! path and the live threaded engine.
//!
//! Where `bench_runtime` measures the whole system (queueing, backpressure,
//! fault machinery), this harness isolates the *match kernel* trajectory:
//! it is the yardstick every data-plane optimisation is judged against.
//! Emits `results/BENCH_hotpath.json`; EXPERIMENTS.md keeps the
//! before/after table.

use move_bench::{
    build_scheme, paper_system, ExperimentConfig, Scale, SchemeKind, Table, Workload,
};
use move_runtime::{Engine, RuntimeConfig};
use move_stats::LatencyHistogram;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct HotpathRun {
    scheme: &'static str,
    /// `sim` = synchronous `Dissemination::publish` loop on one thread;
    /// `live` = `move-runtime` engine with real worker threads.
    mode: &'static str,
    elapsed_secs: f64,
    docs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    deliveries: u64,
    postings_scanned: u64,
}

#[derive(Serialize)]
struct HotpathReport {
    scale: f64,
    nodes: usize,
    filters: usize,
    docs: usize,
    runs: Vec<HotpathRun>,
}

fn sim_run(kind: SchemeKind, cfg: &ExperimentConfig, w: &Workload) -> HotpathRun {
    let mut scheme = build_scheme(kind, cfg, w);
    let mut lat = LatencyHistogram::new();
    let mut deliveries = 0u64;
    let start = Instant::now();
    for d in &w.docs {
        let t0 = Instant::now();
        let out = scheme.publish(0.0, d).expect("sim publish cannot fail");
        lat.record(t0.elapsed().as_nanos() as u64);
        deliveries += out.matched.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let postings_scanned = scheme
        .cluster()
        .ledgers()
        .all()
        .iter()
        .map(|l| l.postings_scanned)
        .sum();
    let s = lat.summary();
    HotpathRun {
        scheme: kind.label(),
        mode: "sim",
        elapsed_secs: elapsed,
        docs_per_sec: w.docs.len() as f64 / elapsed,
        p50_us: s.p50 as f64 / 1e3,
        p99_us: s.p99 as f64 / 1e3,
        deliveries,
        postings_scanned,
    }
}

fn live_run(kind: SchemeKind, cfg: &ExperimentConfig, w: &Workload) -> HotpathRun {
    let scheme = build_scheme(kind, cfg, w);
    let engine = Engine::start(scheme, RuntimeConfig::default()).expect("spawn engine threads");
    let start = Instant::now();
    for d in &w.docs {
        engine.publish(d.clone());
    }
    engine.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let report = engine.shutdown().expect("engine ran to completion");
    HotpathRun {
        scheme: kind.label(),
        mode: "live",
        elapsed_secs: elapsed,
        docs_per_sec: w.docs.len() as f64 / elapsed,
        p50_us: report.latency.p50 as f64 / 1e3,
        p99_us: report.latency.p99 as f64 / 1e3,
        deliveries: report.deliveries(),
        postings_scanned: report.postings_scanned(),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("bench_hotpath ({scale})");
    let nodes = 20;
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(1_000_000, 200) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let cfg = ExperimentConfig::new(paper_system(scale, nodes, w.vocabulary));

    let mut table = Table::new(
        "bench_hotpath",
        &[
            "scheme",
            "mode",
            "elapsed_s",
            "docs_per_s",
            "p50_us",
            "p99_us",
            "deliveries",
            "postings",
        ],
    );
    let mut runs = Vec::new();
    for kind in [SchemeKind::Rs, SchemeKind::Il, SchemeKind::Move] {
        for live in [false, true] {
            let run = if live {
                live_run(kind, &cfg, &w)
            } else {
                sim_run(kind, &cfg, &w)
            };
            table.row(&[
                run.scheme.to_owned(),
                run.mode.to_owned(),
                format!("{:.3}", run.elapsed_secs),
                format!("{:.0}", run.docs_per_sec),
                format!("{:.1}", run.p50_us),
                format!("{:.1}", run.p99_us),
                run.deliveries.to_string(),
                run.postings_scanned.to_string(),
            ]);
            println!(
                "{}/{}: {:.0} docs/s, p50 {:.1}us p99 {:.1}us, {} deliveries",
                run.scheme, run.mode, run.docs_per_sec, run.p50_us, run.p99_us, run.deliveries,
            );
            runs.push(run);
        }
    }
    table.finish();

    let bench = HotpathReport {
        scale: scale.factor,
        nodes,
        filters: w.filters.len(),
        docs: w.docs.len(),
        runs,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_hotpath.json", json).expect("write json report");
    println!("wrote results/BENCH_hotpath.json");
}
