//! Hot-path microbenchmark: docs/sec and per-document match latency for
//! IL, RS, and MOVE through both the single-threaded simulator publish
//! path and the live threaded engine.
//!
//! Where `bench_runtime` measures the whole system (queueing, backpressure,
//! fault machinery), this harness isolates the *match kernel* trajectory:
//! it is the yardstick every data-plane optimisation is judged against.
//! Emits `results/BENCH_hotpath.json`; EXPERIMENTS.md keeps the
//! before/after table.

//! Flags: `--publishers 1,2,4` and `--match-lanes 1,2,4` override the
//! sweep widths; `--lane-cost-target <cost>` sets the scan cost the lane
//! planner packs per stealable unit; `--smoke` pins the workload to the
//! CI smoke scale so the lane gate (`xtask check-bench`) can run on every
//! PR in seconds.

use move_bench::{
    build_scheme, paper_system, ExperimentConfig, Scale, SchemeKind, Table, Workload,
};
use move_runtime::{Engine, RuntimeConfig, DEFAULT_LANE_COST_TARGET};
use move_stats::LatencyHistogram;
use move_types::{DocId, FilterId};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

#[derive(Serialize)]
struct HotpathRun {
    scheme: &'static str,
    /// `sim` = synchronous `Dissemination::publish` loop on one thread;
    /// `live` = `move-runtime` engine with real worker threads.
    mode: &'static str,
    elapsed_secs: f64,
    docs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    deliveries: u64,
    postings_scanned: u64,
}

/// One point of the `--publishers` ingest-scaling sweep: the live engine
/// with a router pool of `publishers` ingest threads, judged against the
/// single-publisher baseline of the same scheme both on throughput
/// (`speedup`) and on correctness (`deliveries_match` — the per-document
/// delivery sets must be identical, publishers only change *who routes*,
/// never *who receives*).
#[derive(Serialize)]
struct ScalingRun {
    scheme: &'static str,
    mode: &'static str,
    publishers: usize,
    docs_per_sec: f64,
    speedup: f64,
    deliveries_match: bool,
}

/// One point of the `--match-lanes` sweep: the live engine with every
/// worker fanning batches over a work-stealing pool of `lanes` match
/// lanes, judged against the single-lane baseline of the same scheme on
/// throughput (`speedup`) and correctness (`deliveries_match` — lanes
/// change *who scans which chunk*, never the delivered sets).
#[derive(Serialize)]
struct LaneRun {
    scheme: &'static str,
    mode: &'static str,
    lanes: usize,
    docs_per_sec: f64,
    speedup: f64,
    deliveries_match: bool,
}

#[derive(Serialize)]
struct HotpathReport {
    scale: f64,
    nodes: usize,
    filters: usize,
    docs: usize,
    runs: Vec<HotpathRun>,
    scaling: Vec<ScalingRun>,
    lanes: Vec<LaneRun>,
}

type DeliveryMap = BTreeMap<DocId, BTreeSet<FilterId>>;

/// Live-engine run with a `publishers`-wide ingest pool, also draining the
/// delivery tap so the sweep can compare delivery maps across pool widths.
fn pool_run(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
    publishers: usize,
) -> (f64, DeliveryMap) {
    let scheme = build_scheme(kind, cfg, w);
    let config = RuntimeConfig {
        publishers,
        ..RuntimeConfig::default()
    };
    let engine = Engine::start(scheme, config).expect("spawn engine threads");
    let deliveries = engine.deliveries();
    let start = Instant::now();
    for d in &w.docs {
        engine.publish(d.clone());
    }
    engine.flush();
    let elapsed = start.elapsed().as_secs_f64();
    engine.shutdown().expect("engine ran to completion");
    let mut map = DeliveryMap::new();
    for d in deliveries.try_iter() {
        map.entry(d.doc).or_default().extend(d.matched);
    }
    (w.docs.len() as f64 / elapsed, map)
}

fn sim_run(kind: SchemeKind, cfg: &ExperimentConfig, w: &Workload) -> HotpathRun {
    let mut scheme = build_scheme(kind, cfg, w);
    let mut lat = LatencyHistogram::new();
    let mut deliveries = 0u64;
    let start = Instant::now();
    for d in &w.docs {
        let t0 = Instant::now();
        let out = scheme.publish(0.0, d).expect("sim publish cannot fail");
        lat.record(t0.elapsed().as_nanos() as u64);
        deliveries += out.matched.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let postings_scanned = scheme
        .cluster()
        .ledgers()
        .all()
        .iter()
        .map(|l| l.postings_scanned)
        .sum();
    let s = lat.summary();
    HotpathRun {
        scheme: kind.label(),
        mode: "sim",
        elapsed_secs: elapsed,
        docs_per_sec: w.docs.len() as f64 / elapsed,
        p50_us: s.p50 as f64 / 1e3,
        p99_us: s.p99 as f64 / 1e3,
        deliveries,
        postings_scanned,
    }
}

fn live_run(kind: SchemeKind, cfg: &ExperimentConfig, w: &Workload) -> HotpathRun {
    let scheme = build_scheme(kind, cfg, w);
    let engine = Engine::start(scheme, RuntimeConfig::default()).expect("spawn engine threads");
    let start = Instant::now();
    for d in &w.docs {
        engine.publish(d.clone());
    }
    engine.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let report = engine.shutdown().expect("engine ran to completion");
    HotpathRun {
        scheme: kind.label(),
        mode: "live",
        elapsed_secs: elapsed,
        docs_per_sec: w.docs.len() as f64 / elapsed,
        p50_us: report.latency.p50 as f64 / 1e3,
        p99_us: report.latency.p99 as f64 / 1e3,
        deliveries: report.deliveries(),
        postings_scanned: report.postings_scanned(),
    }
}

/// Live-engine run with `lanes` match lanes per worker (single-publisher
/// router, so the sweep isolates the intra-node match pool), draining the
/// delivery tap for the cross-width correctness gate.
fn lane_run(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
    lanes: usize,
    cost_target: usize,
) -> (f64, DeliveryMap) {
    let scheme = build_scheme(kind, cfg, w);
    let config = RuntimeConfig {
        match_lanes: lanes,
        lane_cost_target: cost_target,
        ..RuntimeConfig::default()
    };
    let engine = Engine::start(scheme, config).expect("spawn engine threads");
    let deliveries = engine.deliveries();
    let start = Instant::now();
    for d in &w.docs {
        engine.publish(d.clone());
    }
    engine.flush();
    let elapsed = start.elapsed().as_secs_f64();
    engine.shutdown().expect("engine ran to completion");
    let mut map = DeliveryMap::new();
    for d in deliveries.try_iter() {
        map.entry(d.doc).or_default().extend(d.matched);
    }
    (w.docs.len() as f64 / elapsed, map)
}

/// The lane sweep for one scheme, measured in `repeats` *rounds*: each
/// round times every width back to back, and a width's `speedup` is the
/// **best of its per-round ratios** against that same round's width-1
/// baseline. The lane gate is a hard ≥0.95 floor on `speedup`, and on a
/// loaded host identical configurations swing ±10% run to run, so the
/// estimator is built for a low false-positive rate: ratios within one
/// round are adjacent in time (slow drift cancels), and taking the best
/// round means the gate only fails a configuration that regresses in
/// *every* round — which is exactly what a real scheduling regression
/// (the 0.72× fixed-chunk result this gate exists for) does, and what
/// noise does not. Rounds alternate direction (widths ascending, then
/// descending — boustrophedon), so a *monotone* host slowdown, which
/// within one round always lands hardest on whichever width runs last,
/// penalizes a given width in at most half the rounds instead of all of
/// them. Reported `docs_per_sec` is the width's best round. The delivery
/// map of *every* run feeds the correctness gate — noise may excuse a
/// slow run, never a wrong one.
///
/// Returns `(width, best_docs_per_sec, speedup, deliveries)` per width,
/// in `widths` order (width 1 first, speedup exactly 1).
fn lane_sweep_runs(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
    widths: &[usize],
    cost_target: usize,
    repeats: usize,
) -> Vec<(usize, f64, f64, DeliveryMap)> {
    assert_eq!(widths.first(), Some(&1), "width 1 anchors every ratio");
    let mut best = vec![0.0f64; widths.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); widths.len()];
    let mut maps: Vec<Option<DeliveryMap>> = vec![None; widths.len()];
    for pass in 0..repeats.max(1) {
        let mut round = vec![0.0f64; widths.len()];
        let order: Vec<usize> = if pass % 2 == 0 {
            (0..widths.len()).collect()
        } else {
            (0..widths.len()).rev().collect()
        };
        for &i in &order {
            let (dps, map) = lane_run(kind, cfg, w, widths[i], cost_target);
            match &maps[i] {
                None => maps[i] = Some(map),
                Some(first) => assert_eq!(&map, first, "lane repeats must deliver identically"),
            }
            best[i] = best[i].max(dps);
            round[i] = dps;
        }
        for (i, &dps) in round.iter().enumerate() {
            ratios[i].push(dps / round[0]);
        }
    }
    widths
        .iter()
        .enumerate()
        .map(|(i, &width)| {
            let speedup = ratios[i].iter().copied().fold(f64::MIN, f64::max);
            (width, best[i], speedup, maps[i].take().unwrap_or_default())
        })
        .collect()
}

/// Parses a `--flag 1,2,4` width list from the CLI; falls back to
/// `default`, and always includes width 1 so every speedup has its
/// denominator.
fn width_sweep(flag: &str, default: &[usize]) -> Vec<usize> {
    let mut sweep = default.to_vec();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            let spec = args.next().unwrap_or_default();
            sweep = spec
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .collect();
        }
    }
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// Whether a bare boolean flag is present on the CLI.
fn bool_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Parses a `--flag <n>` positive-integer value from the CLI.
fn usize_flag(flag: &str, default: usize) -> usize {
    let mut args = std::env::args();
    let mut value = default;
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(n) = args.next().and_then(|s| s.trim().parse::<usize>().ok()) {
                if n >= 1 {
                    value = n;
                }
            }
        }
    }
    value
}

fn main() {
    let smoke = bool_flag("--smoke");
    // Smoke mode pins the CI gate scale (the same factor the bench-smoke
    // job exports) so `--smoke` runs identically with or without
    // MOVE_SCALE in the environment.
    let scale = if smoke {
        Scale::new(0.002)
    } else {
        Scale::from_env()
    };
    let cost_target = usize_flag("--lane-cost-target", DEFAULT_LANE_COST_TARGET);
    // One timing hiccup must not fail the hard ≥0.95 lane floor, so the
    // sweep runs several rounds and keeps each width's best
    // drift-compensated ratio (see `lane_sweep_runs`); the quick CI smoke
    // run buys extra rounds for its much shorter workload.
    let lane_repeats = if smoke { 5 } else { 4 };
    println!(
        "bench_hotpath ({scale}{}, lane cost target {cost_target})",
        if smoke { ", smoke" } else { "" }
    );
    let nodes = 20;
    // Smoke keeps the filter population tiny but streams enough documents
    // that each timed run lasts hundreds of milliseconds — 500-doc runs
    // finish in ~30 ms, where thread scheduling noise alone swings
    // throughput past the ±5% lane floor.
    let docs = if smoke {
        4_000
    } else {
        scale.count(100_000, 500) as usize
    };
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(1_000_000, 200) as usize)
        .slice_docs(docs);
    let cfg = ExperimentConfig::new(paper_system(scale, nodes, w.vocabulary));

    let mut table = Table::new(
        "bench_hotpath",
        &[
            "scheme",
            "mode",
            "elapsed_s",
            "docs_per_s",
            "p50_us",
            "p99_us",
            "deliveries",
            "postings",
        ],
    );
    let mut runs = Vec::new();
    for kind in [SchemeKind::Rs, SchemeKind::Il, SchemeKind::Move] {
        for live in [false, true] {
            let run = if live {
                live_run(kind, &cfg, &w)
            } else {
                sim_run(kind, &cfg, &w)
            };
            table.row(&[
                run.scheme.to_owned(),
                run.mode.to_owned(),
                format!("{:.3}", run.elapsed_secs),
                format!("{:.0}", run.docs_per_sec),
                format!("{:.1}", run.p50_us),
                format!("{:.1}", run.p99_us),
                run.deliveries.to_string(),
                run.postings_scanned.to_string(),
            ]);
            println!(
                "{}/{}: {:.0} docs/s, p50 {:.1}us p99 {:.1}us, {} deliveries",
                run.scheme, run.mode, run.docs_per_sec, run.p50_us, run.p99_us, run.deliveries,
            );
            runs.push(run);
        }
    }
    table.finish();

    // The ingest-scaling sweep: router pools of increasing width on the
    // two keyword-routed schemes (RS floods, so its router does no real
    // work worth scaling). Correctness gate: every width must reproduce
    // the width-1 delivery map exactly.
    // Smoke keeps the publisher sweep minimal — the job exists to gate
    // the *lane* sweep; one pool width still exercises the schema.
    let publisher_default: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let sweep = width_sweep("--publishers", publisher_default);
    let mut scaling_table = Table::new(
        "bench_hotpath_scaling",
        &["scheme", "publishers", "docs_per_s", "speedup", "match"],
    );
    let mut scaling = Vec::new();
    for kind in [SchemeKind::Il, SchemeKind::Move] {
        let mut baseline: Option<(f64, DeliveryMap)> = None;
        for &publishers in &sweep {
            let (dps, map) = pool_run(kind, &cfg, &w, publishers);
            let (base_dps, base_map) = baseline.get_or_insert_with(|| (dps, map.clone()));
            let run = ScalingRun {
                scheme: kind.label(),
                mode: "live",
                publishers,
                docs_per_sec: dps,
                speedup: dps / *base_dps,
                deliveries_match: map == *base_map,
            };
            scaling_table.row(&[
                run.scheme.to_owned(),
                run.publishers.to_string(),
                format!("{:.0}", run.docs_per_sec),
                format!("{:.2}", run.speedup),
                run.deliveries_match.to_string(),
            ]);
            println!(
                "{}/live x{}: {:.0} docs/s, speedup {:.2}, deliveries_match {}",
                run.scheme, run.publishers, run.docs_per_sec, run.speedup, run.deliveries_match,
            );
            scaling.push(run);
        }
    }
    scaling_table.finish();

    // The match-lane sweep: work-stealing pools of increasing width inside
    // every worker, single-publisher router. Same correctness gate as the
    // publisher sweep: every width must reproduce the width-1 delivery map.
    let lane_sweep = width_sweep("--match-lanes", &[1, 2, 4]);
    let mut lanes_table = Table::new(
        "bench_hotpath_lanes",
        &["scheme", "lanes", "docs_per_s", "speedup", "match"],
    );
    let mut lanes = Vec::new();
    for kind in [SchemeKind::Il, SchemeKind::Move] {
        let mut base_map: Option<DeliveryMap> = None;
        for (width, dps, speedup, map) in
            lane_sweep_runs(kind, &cfg, &w, &lane_sweep, cost_target, lane_repeats)
        {
            let base_map = base_map.get_or_insert_with(|| map.clone());
            let run = LaneRun {
                scheme: kind.label(),
                mode: "live",
                lanes: width,
                docs_per_sec: dps,
                speedup,
                deliveries_match: map == *base_map,
            };
            lanes_table.row(&[
                run.scheme.to_owned(),
                run.lanes.to_string(),
                format!("{:.0}", run.docs_per_sec),
                format!("{:.2}", run.speedup),
                run.deliveries_match.to_string(),
            ]);
            println!(
                "{}/live lanes={}: {:.0} docs/s, speedup {:.2}, deliveries_match {}",
                run.scheme, run.lanes, run.docs_per_sec, run.speedup, run.deliveries_match,
            );
            lanes.push(run);
        }
    }
    lanes_table.finish();

    let bench = HotpathReport {
        scale: scale.factor,
        nodes,
        filters: w.filters.len(),
        docs: w.docs.len(),
        runs,
        scaling,
        lanes,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_hotpath.json", json).expect("write json report");
    println!("wrote results/BENCH_hotpath.json");
}
