//! Ablation: the allocation-factor rules — Theorem 1 (`√q`), Theorem 2
//! (`√(1+βq)`), the general `√(p·q)` (all on node aggregates), the
//! load-preserving `√(load/pairs)`, the min–max `load/pairs`, and a uniform
//! strawman — at the paper-default cluster point.

use move_bench::{paper_system, run_scheme, ExperimentConfig, Scale, SchemeKind, Table, Workload};
use move_core::FactorRule;

fn main() {
    let scale = Scale::from_env();
    println!("ablation_theorem ({scale})");
    let base = Workload::paper_cluster(scale).slice_docs(scale.count(100_000, 500) as usize);
    let mut table = Table::new("ablation_theorem", &["P_paper", "rule", "throughput"]);
    // The default point plus the most hot-spot-stressed point of Fig. 8(a):
    // the rules differ most where the budget is scarcest per pair.
    for p_paper in [4_000_000u64, 10_000_000] {
        let w = base.slice_filters(scale.count(p_paper, 100) as usize);
        for (name, rule) in [
            ("uniform", FactorRule::Uniform),
            ("thm1 sqrt(q)", FactorRule::SqrtQ),
            ("thm2 sqrt(1+bq)", FactorRule::SqrtBetaQ),
            ("general sqrt(pq)", FactorRule::SqrtPQ),
            ("sqrt(load/pairs)", FactorRule::SqrtLoad),
            ("minmax load/pairs", FactorRule::LoadBalance),
        ] {
            let mut cfg = ExperimentConfig::new(paper_system(scale, 20, base.vocabulary));
            cfg.rule = rule;
            let r = run_scheme(SchemeKind::Move, &cfg, &w);
            table.row(&[
                p_paper.to_string(),
                name.to_owned(),
                format!("{:.2}", r.capacity_throughput),
            ]);
            println!("P={p_paper} {name}: {:.2}", r.capacity_throughput);
        }
    }
    table.finish();
    println!(
        "note: node-level aggregation flattens per-node statistics, so the rules land \
         within ~10% of each other — the paper's motivation for not engineering them further"
    );
}
