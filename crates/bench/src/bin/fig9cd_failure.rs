//! Figures 9(c) and 9(d): throughput and filter availability under node
//! failure (rates 0 and 0.3, rack-correlated), comparing the three
//! allocated-filter placements of §V — ring successors, rack-aware, and the
//! MOVE hybrid (half/half).
//!
//! Paper: rack placement has the highest throughput (top-of-rack transfers)
//! but the lowest availability at 0.3 failure; ring has the lowest
//! throughput; the hybrid takes both high throughput and high availability.

use move_bench::{paper_system, run_stream, ExperimentConfig, Scale, Table, Workload};
use move_cluster::FailureMode;
use move_core::{Dissemination, MoveScheme, PlacementStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    println!("fig9c_failure_throughput / fig9d_failure_availability ({scale})");
    let w = Workload::paper_cluster(scale)
        .slice_filters(scale.count(4_000_000, 100) as usize)
        .slice_docs(scale.count(100_000, 500) as usize);
    let mut tput = Table::new(
        "fig9c_failure_throughput",
        &["placement", "failure_rate", "throughput"],
    );
    let mut avail = Table::new(
        "fig9d_failure_availability",
        &["placement", "failure_rate", "availability"],
    );

    for (placement, label) in [
        (PlacementStrategy::Hybrid, "move"),
        (PlacementStrategy::Ring, "ring"),
        (PlacementStrategy::Rack, "rack"),
    ] {
        for failure_rate in [0.0f64, 0.3] {
            let mut system = paper_system(scale, 20, w.vocabulary);
            system.placement = placement;
            let cfg = ExperimentConfig::new(system.clone());

            let mut scheme = MoveScheme::new(system).expect("valid config");
            // This figure compares *placements*, so use the paper's own §V
            // allocation rule: its near-uniform nᵢ produces rack-sized
            // grids, which is exactly the regime where the ring/rack/hybrid
            // trade-off is visible. (The load-concentrating default would
            // let hot grids span the cluster under every placement.)
            scheme.set_factor_rule(move_core::FactorRule::SqrtPQ);
            for f in &w.filters {
                scheme.register(f).expect("registration cannot fail");
            }
            scheme.observe_corpus(&w.sample);
            scheme.allocate().expect("allocation fits");
            if failure_rate > 0.0 {
                let mut rng = StdRng::seed_from_u64(0x9C0 + (failure_rate * 10.0) as u64);
                let dead = scheme.cluster_mut().fail_fraction(
                    failure_rate,
                    FailureMode::RackCorrelated,
                    &mut rng,
                );
                println!("{label} @ {failure_rate}: {} nodes down", dead.len());
            }
            let availability = scheme.filter_availability();
            let r = run_stream(&mut scheme, &cfg, &w.docs);
            tput.row(&[
                label.to_owned(),
                format!("{failure_rate}"),
                format!("{:.2}", r.capacity_throughput),
            ]);
            avail.row(&[
                label.to_owned(),
                format!("{failure_rate}"),
                format!("{availability:.4}"),
            ]);
            println!(
                "{label} @ {failure_rate}: throughput {:.2}, availability {:.4}, delivered {}",
                r.capacity_throughput, availability, r.deliveries
            );
        }
    }
    tput.finish();
    avail.finish();
    println!("paper: rack fastest but least available at 0.3; ring slowest; hybrid balances both");
}
