//! Join-under-load benchmark: a node joins the live cluster in the middle
//! of a sustained publish stream, through the staged-layout rebalancer
//! (`Engine::join_node`). Measures the throughput dip of the handover —
//! the headline claim is that ingest never fully stalls: the ingest plane
//! is fenced only for the layout commit, never for the partition copy —
//! and oracle-checks the delivery sets against a from-scratch cluster
//! built with N+1 nodes (elasticity must be invisible to subscribers).
//!
//! Emits `results/BENCH_rebalance.json` (validated by
//! `cargo xtask check-bench`); EXPERIMENTS.md keeps the join-under-load
//! table. `--smoke` shrinks the workload for CI.

use move_bench::{
    build_scheme, paper_system, ExperimentConfig, Scale, SchemeKind, Table, Workload,
};
use move_runtime::{Engine, RuntimeConfig};
use move_types::{DocId, Document, FilterId};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Publisher-facing ingest threads for every live run.
const PUBLISHERS: usize = 4;

#[derive(Serialize)]
struct RebalanceRun {
    scheme: &'static str,
    mode: &'static str,
    publishers: usize,
    /// Handover-window length in published documents.
    window_docs: u64,
    /// Throughput of the run containing the join, stream start to drain.
    docs_per_sec: f64,
    /// Throughput of the identical run without a join.
    baseline_docs_per_sec: f64,
    /// Slowest ingest bucket of the join run over the run's median bucket
    /// — in (0, 1] by construction, and the no-stall witness: a fence that
    /// parked ingest for the whole copy would crater this towards zero.
    dip_ratio: f64,
    joins: u64,
    partitions_moved: u64,
    docs_double_routed: u64,
    handover_docs: u64,
    handover_nanos: u64,
    p99_us: f64,
    /// Delivery-set oracle: join run ≡ no-join run ≡ a from-scratch
    /// simulator cluster built with N+1 nodes, per document.
    deliveries_match: bool,
}

#[derive(Serialize)]
struct RebalanceReport {
    scale: f64,
    nodes: usize,
    filters: usize,
    docs: usize,
    runs: Vec<RebalanceRun>,
}

type DeliveryMap = BTreeMap<DocId, BTreeSet<FilterId>>;

/// Per-bucket ingest rates from one publisher thread, plus the delivery
/// union and the end-of-run report.
struct LiveOutcome {
    rates: Vec<f64>,
    elapsed_secs: f64,
    delivered: DeliveryMap,
    report: move_runtime::RuntimeReport,
}

/// Runs the stream through a pooled live engine. When `join_at` is set,
/// the main thread triggers `join_node(window)` once the publisher passes
/// that document; the publisher keeps the stream alive (recycling the doc
/// list, which is delivery-idempotent) until the join commits, so the
/// handover window always fills.
fn live_run(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
    join_at: Option<(u64, u64)>,
) -> (LiveOutcome, Option<move_runtime::JoinOutcome>) {
    let scheme = build_scheme(kind, cfg, w);
    let config = RuntimeConfig {
        publishers: PUBLISHERS,
        ..RuntimeConfig::default()
    };
    let engine = Arc::new(Engine::start(scheme, config).expect("spawn engine threads"));
    let deliveries = engine.deliveries();
    let published = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let bucket = (w.docs.len() / 24).max(25);

    let feeder = {
        let engine = Arc::clone(&engine);
        let published = Arc::clone(&published);
        let stop = Arc::clone(&stop);
        let docs: Vec<Document> = w.docs.clone();
        std::thread::spawn(move || {
            let mut rates = Vec::new();
            let start = Instant::now();
            let mut t0 = Instant::now();
            for (i, d) in docs.iter().enumerate() {
                engine.publish(d.clone());
                published.fetch_add(1, Ordering::Relaxed);
                if (i + 1) % bucket == 0 {
                    rates.push(bucket as f64 / t0.elapsed().as_secs_f64());
                    t0 = Instant::now();
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            // Keep-alive: if a join is still windowing when the stream
            // runs dry, recycle documents so the window can fill.
            while !stop.load(Ordering::Relaxed) {
                for d in &docs {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    engine.publish(d.clone());
                }
            }
            (rates, elapsed)
        })
    };

    let outcome = join_at.map(|(at_doc, window)| {
        while published.load(Ordering::Relaxed) < at_doc {
            std::thread::sleep(Duration::from_millis(1));
        }
        let outcome = engine.join_node(window).expect("join commits under load");
        println!(
            "  {}: {} joined at doc {}, {} partitions moved, window {} docs / {:.1} ms",
            kind.label(),
            outcome.node,
            published.load(Ordering::Relaxed),
            outcome.partitions_moved,
            outcome.handover_docs,
            outcome.handover_nanos as f64 / 1e6,
        );
        outcome
    });
    stop.store(true, Ordering::Relaxed);
    let (rates, elapsed_secs) = feeder.join().expect("publisher thread");
    engine.flush();
    let engine = Arc::into_inner(engine).expect("sole engine handle");
    let report = engine.shutdown().expect("engine ran to completion");

    let mut delivered = DeliveryMap::new();
    for d in deliveries.try_iter() {
        delivered.entry(d.doc).or_default().extend(d.matched);
    }
    (
        LiveOutcome {
            rates,
            elapsed_secs,
            delivered,
            report,
        },
        outcome,
    )
}

/// The from-scratch oracle: the same workload through a synchronous
/// simulator cluster built with `nodes` from the start — the delivery sets
/// an N+1 cluster would have produced had the joiner always been a member.
fn fresh_cluster_deliveries(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
    nodes: usize,
) -> DeliveryMap {
    let mut grown = cfg.clone();
    grown.system.nodes = nodes;
    let mut scheme = build_scheme(kind, &grown, w);
    let mut map = DeliveryMap::new();
    for d in &w.docs {
        let out = scheme.publish(0.0, d).expect("sim publish cannot fail");
        map.insert(d.id(), out.matched.into_iter().collect());
    }
    map
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_env();
    println!(
        "bench_rebalance ({scale}{})",
        if smoke { ", smoke" } else { "" }
    );
    let nodes = 20;
    let (max_filters, max_docs) = if smoke {
        (2_000, 600)
    } else {
        (
            scale.count(500_000, 200) as usize,
            scale.count(60_000, 1_000) as usize,
        )
    };
    let w = Workload::paper_cluster(scale)
        .slice_filters(max_filters)
        .slice_docs(max_docs);
    let cfg = ExperimentConfig::new(paper_system(scale, nodes, w.vocabulary));
    let join_at = w.docs.len() as u64 / 3;
    let window = (w.docs.len() as u64 / 10).max(50);

    let mut table = Table::new(
        "bench_rebalance",
        &[
            "scheme",
            "docs_per_s",
            "baseline_docs_per_s",
            "dip_ratio",
            "partitions",
            "doubled",
            "window_docs",
            "window_ms",
            "match",
        ],
    );
    let mut runs = Vec::new();
    for kind in [SchemeKind::Il, SchemeKind::Move] {
        let oracle = fresh_cluster_deliveries(kind, &cfg, &w, nodes + 1);
        let (baseline, _) = live_run(kind, &cfg, &w, None);
        let (join, outcome) = live_run(kind, &cfg, &w, Some((join_at, window)));
        let outcome = outcome.expect("join run produced an outcome");
        let deliveries_match = join.delivered == oracle && baseline.delivered == oracle;
        let med = median(&join.rates);
        let dip_ratio = if med > 0.0 {
            join.rates.iter().copied().fold(f64::INFINITY, f64::min) / med
        } else {
            0.0
        };
        let run = RebalanceRun {
            scheme: kind.label(),
            mode: "live",
            publishers: PUBLISHERS,
            window_docs: window,
            docs_per_sec: w.docs.len() as f64 / join.elapsed_secs,
            baseline_docs_per_sec: w.docs.len() as f64 / baseline.elapsed_secs,
            dip_ratio,
            joins: join.report.joins,
            partitions_moved: join.report.partitions_moved,
            docs_double_routed: join.report.docs_double_routed,
            handover_docs: outcome.handover_docs,
            handover_nanos: outcome.handover_nanos,
            p99_us: join.report.latency.p99 as f64 / 1e3,
            deliveries_match,
        };
        table.row(&[
            run.scheme.to_owned(),
            format!("{:.0}", run.docs_per_sec),
            format!("{:.0}", run.baseline_docs_per_sec),
            format!("{:.3}", run.dip_ratio),
            run.partitions_moved.to_string(),
            run.docs_double_routed.to_string(),
            run.handover_docs.to_string(),
            format!("{:.1}", run.handover_nanos as f64 / 1e6),
            run.deliveries_match.to_string(),
        ]);
        println!(
            "{}/live: {:.0} docs/s (baseline {:.0}), dip {:.3}, {} partitions moved, \
             {} docs double-routed, deliveries_match {}",
            run.scheme,
            run.docs_per_sec,
            run.baseline_docs_per_sec,
            run.dip_ratio,
            run.partitions_moved,
            run.docs_double_routed,
            run.deliveries_match,
        );
        runs.push(run);
    }
    table.finish();

    let bench = RebalanceReport {
        scale: scale.factor,
        nodes,
        filters: w.filters.len(),
        docs: w.docs.len(),
        runs,
    };
    let json = serde_json::to_string_pretty(&bench).expect("report serializes");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_rebalance.json", json).expect("write json report");
    println!("wrote results/BENCH_rebalance.json");
}
