//! The end-to-end experiment driver.

use crate::Workload;
use move_cluster::CostModel;
use move_cluster::{Job, QueueSim, SimOutcome};
use move_core::{
    Dissemination, FactorRule, GridMode, IlScheme, MoveScheme, RsScheme, SystemConfig,
};
use move_types::Document;

/// The paper's deployment at a given scale: N nodes over 4 racks,
/// `C = 3×10⁶·scale` filters per node, and a disk-seek-dominated cost model
/// whose memory knee sits well above `C` (see the field comments).
pub fn paper_system(scale: crate::Scale, nodes: usize, vocabulary: usize) -> SystemConfig {
    let capacity = scale.count(3_000_000, 1_000);
    SystemConfig {
        nodes,
        racks: 4.min(nodes),
        capacity_per_node: capacity,
        expected_terms: vocabulary,
        cost: CostModel {
            // A posting-list retrieval is a partially-amortized disk read
            // (~0.4 ms): large enough that SIFT's |d| retrievals per
            // document tax the rendezvous scheme, small enough not to bury
            // the posting-scan skew that hurts the IL hot spots.
            y_s: 4e-4,
            // Posting volumes shrink with the scale factor, so the
            // per-posting cost grows by 1/scale — keeping the ratio of
            // scan time to seek/transfer time scale-invariant.
            y_p: 2e-7 / scale.factor,
            // The cluster experiments assume nodes hold their share in
            // memory — the optimizer's constraint `Σ nᵢ·pᵢ·P = N·C` exists
            // precisely to keep every node off the disk. The knee therefore
            // sits well above C here; the single-node experiment (Fig. 6)
            // probes the knee explicitly with its own model.
            mem_capacity: capacity * 4,
            ..CostModel::default()
        },
        ..SystemConfig::default()
    }
}

/// Which scheme an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// MOVE with adaptive allocation.
    Move,
    /// The distributed-inverted-list baseline.
    Il,
    /// The rendezvous/flooding comparator.
    Rs,
}

impl SchemeKind {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Self::Move => "move",
            Self::Il => "il",
            Self::Rs => "rs",
        }
    }
}

/// Experiment parameters beyond the system configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The deployment.
    pub system: SystemConfig,
    /// Document injection rate in docs per virtual second. The default is
    /// `f64::INFINITY`: the whole stream arrives as one batch (the paper's
    /// "Q documents" burst) and throughput is `Q / makespan`.
    pub inject_rate: f64,
    /// Queueing congestion model `(coeff, soft_backlog_seconds)`; `None`
    /// for a plain queueing network.
    pub congestion: Option<(f64, f64)>,
    /// MOVE's allocation-factor rule.
    pub rule: FactorRule,
    /// MOVE's grid mode (ablations force pure replication/separation).
    pub grid_mode: GridMode,
    /// Run MOVE's proactive allocation (disable to degenerate MOVE to IL).
    pub allocate: bool,
}

impl ExperimentConfig {
    /// The paper's cluster defaults with the given system configuration.
    pub fn new(system: SystemConfig) -> Self {
        Self {
            system,
            inject_rate: f64::INFINITY,
            congestion: None,
            rule: FactorRule::LoadBalance,
            grid_mode: GridMode::Optimal,
            allocate: true,
        }
    }
}

/// Everything a figure needs from one scheme run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme label.
    pub scheme: &'static str,
    /// Queueing-simulator outcome over the published stream.
    pub sim: SimOutcome,
    /// Documents per second by the busiest-node capacity bound
    /// (`docs / max busy seconds`).
    pub capacity_throughput: f64,
    /// Filter copies per node after setup.
    pub storage: Vec<u64>,
    /// Matching cost per node during the stream: posting entries scanned
    /// (the work of "retriev\[ing\] the local inverted list", Fig. 9b).
    pub matching: Vec<u64>,
    /// Total filter deliveries.
    pub deliveries: u64,
}

/// Runs one scheme over a workload: register → (MOVE: observe sample +
/// allocate) → publish the timed stream → queueing simulation. Ledgers are
/// reset between setup and the stream so reported costs are steady-state.
///
/// # Panics
///
/// Panics on configuration errors — figure binaries construct their
/// configurations statically.
pub fn run_scheme(kind: SchemeKind, cfg: &ExperimentConfig, w: &Workload) -> RunResult {
    let mut scheme = build_scheme(kind, cfg, w);
    run_stream(scheme.as_mut(), cfg, &w.docs)
}

/// Builds a scheme and performs its setup phase (registration; for MOVE
/// also the offline observation and proactive allocation) without
/// publishing anything — for binaries that drive the stream themselves.
///
/// # Panics
///
/// Panics on configuration errors.
pub fn build_scheme(
    kind: SchemeKind,
    cfg: &ExperimentConfig,
    w: &Workload,
) -> Box<dyn Dissemination + Send> {
    match kind {
        SchemeKind::Move => {
            let mut m = MoveScheme::new(cfg.system.clone()).expect("valid config");
            m.set_factor_rule(cfg.rule);
            m.set_grid_mode(cfg.grid_mode);
            for f in &w.filters {
                m.register(f).expect("registration cannot fail");
            }
            m.observe_corpus(&w.sample);
            if cfg.allocate {
                m.allocate()
                    .expect("allocation fits the configured capacity");
            }
            Box::new(m)
        }
        SchemeKind::Il => {
            let mut s = IlScheme::new(cfg.system.clone()).expect("valid config");
            for f in &w.filters {
                s.register(f).expect("registration cannot fail");
            }
            Box::new(s)
        }
        SchemeKind::Rs => {
            let mut s = RsScheme::new(cfg.system.clone()).expect("valid config");
            for f in &w.filters {
                s.register(f).expect("registration cannot fail");
            }
            Box::new(s)
        }
    }
}

/// Publishes `docs` through an already-set-up scheme and simulates the
/// resulting task graphs. Exposed for binaries that need custom setup
/// (failure injection, ablations).
pub fn run_stream(
    scheme: &mut dyn Dissemination,
    cfg: &ExperimentConfig,
    docs: &[Document],
) -> RunResult {
    scheme.cluster_mut().ledgers_mut().reset();
    let mut jobs: Vec<Job> = Vec::with_capacity(docs.len());
    let mut deliveries = 0u64;
    for (i, d) in docs.iter().enumerate() {
        let at = if cfg.inject_rate.is_finite() {
            i as f64 / cfg.inject_rate
        } else {
            0.0
        };
        let out = scheme.publish(at, d).expect("publish cannot fail");
        deliveries += out.matched.len() as u64;
        jobs.push(out.job);
    }
    let sim = match cfg.congestion {
        Some((c, soft)) => QueueSim::with_congestion(c, soft),
        None => QueueSim::new(),
    }
    .run(cfg.system.nodes, &jobs);

    let max_busy = scheme.cluster().ledgers().max_busy();
    let capacity_throughput = if max_busy > 0.0 {
        docs.len() as f64 / max_busy
    } else {
        0.0
    };
    RunResult {
        scheme: scheme.name(),
        capacity_throughput,
        storage: scheme.storage_per_node(),
        matching: scheme
            .cluster()
            .ledgers()
            .all()
            .iter()
            .map(|l| l.postings_scanned)
            .collect(),
        deliveries,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Scale};

    #[test]
    fn all_three_schemes_run_and_agree_on_deliveries() {
        let w = Workload::build(Scale::new(0.005), Dataset::Wt, 200_000, 10_000, 3);
        let mut cfg = ExperimentConfig::new(SystemConfig {
            nodes: 8,
            racks: 2,
            capacity_per_node: (w.filters.len() as u64).max(2_000),
            expected_terms: w.vocabulary,
            ..SystemConfig::default()
        });
        cfg.inject_rate = 100.0;
        let results: Vec<RunResult> = [SchemeKind::Move, SchemeKind::Il, SchemeKind::Rs]
            .into_iter()
            .map(|k| run_scheme(k, &cfg, &w))
            .collect();
        // Completeness across schemes: identical delivery totals.
        assert_eq!(results[0].deliveries, results[1].deliveries);
        assert_eq!(results[0].deliveries, results[2].deliveries);
        assert!(results[0].deliveries > 0);
        for r in &results {
            assert_eq!(r.sim.completed, w.docs.len() as u64);
            assert!(r.capacity_throughput > 0.0);
            assert!(r.sim.throughput > 0.0);
        }
    }
}
