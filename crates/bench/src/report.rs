//! Stdout tables and CSV dumps.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A small aligned table that also lands in `results/<name>.csv` — one per
/// figure, so `EXPERIMENTS.md` can reference the raw series.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given CSV base name and column header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", line(&self.header));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Writes `results/<name>.csv` (creating the directory), returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Prints and writes, logging the CSV path.
    pub fn finish(&self) {
        self.print();
        match self.write_csv() {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write csv: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align_with_header() {
        let mut t = Table::new("test_table", &["a", "bb"]);
        t.push(&[1, 22]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.push(&[1, 2]);
    }
}
