//! A small dependency-free SVG line-chart writer for the figure CSVs.
//!
//! Good enough for log-log ranked-popularity plots and multi-series
//! throughput curves — the shapes the paper's figures show. No external
//! plotting stack is available offline, and the charts only need lines,
//! ticks and a legend.

/// One chart: axes (optionally logarithmic) and named series.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    log_x: bool,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 52.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches the axes to logarithmic scales.
    pub fn log_axes(mut self, log_x: bool, log_y: bool) -> Self {
        self.log_x = log_x;
        self.log_y = log_y;
        self
    }

    /// Adds a named series. Non-positive values are dropped on log axes.
    pub fn series(mut self, name: &str, points: &[(f64, f64)]) -> Self {
        let filtered: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|&(x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (!self.log_x || x > 0.0)
                    && (!self.log_y || y > 0.0)
            })
            .collect();
        self.series.push((name.to_owned(), filtered));
        self
    }

    fn tx(&self, v: f64) -> f64 {
        if self.log_x {
            v.log10()
        } else {
            v
        }
    }

    fn ty(&self, v: f64) -> f64 {
        if self.log_y {
            v.log10()
        } else {
            v
        }
    }

    /// Renders the SVG document.
    ///
    /// Returns a minimal placeholder when every series is empty.
    pub fn to_svg(&self) -> String {
        let mut all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|&(x, y)| (self.tx(x), self.ty(y))))
            .collect();
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
             viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">\n"
        ));
        out.push_str(&format!(
            "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>\n"
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"15\">{}</text>\n",
            WIDTH / 2.0,
            xml_escape(&self.title)
        ));
        if all.is_empty() {
            out.push_str("<text x=\"40\" y=\"60\">(no data)</text>\n</svg>\n");
            return out;
        }
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0) * plot_h;

        // Frame and labels.
        out.push_str(&format!(
            "<rect x=\"{MARGIN_L}\" y=\"{MARGIN_T}\" width=\"{plot_w}\" height=\"{plot_h}\" \
             fill=\"none\" stroke=\"#444\"/>\n"
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        ));
        out.push_str(&format!(
            "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>\n",
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        ));

        // Ticks: 5 per axis, labeled in original units.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let (lx, ly) = (
                if self.log_x { 10f64.powf(fx) } else { fx },
                if self.log_y { 10f64.powf(fy) } else { fy },
            );
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" font-size=\"10\">{}</text>\n",
                px(fx),
                MARGIN_T + plot_h + 16.0,
                tick_label(lx)
            ));
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" font-size=\"10\">{}</text>\n",
                MARGIN_L - 6.0,
                py(fy) + 4.0,
                tick_label(ly)
            ));
            out.push_str(&format!(
                "<line x1=\"{MARGIN_L}\" x2=\"{:.1}\" y1=\"{:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>\n",
                MARGIN_L + plot_w,
                py(fy),
                py(fy)
            ));
        }

        // Series.
        for (k, (name, pts)) in self.series.iter().enumerate() {
            let color = COLORS[k % COLORS.len()];
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(self.tx(x)), py(self.ty(y))))
                .collect();
            if path.len() > 1 {
                out.push_str(&format!(
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\"/>\n",
                    path.join(" ")
                ));
            }
            for p in &path {
                let mut it = p.split(',');
                let (cx, cy) = (it.next().unwrap_or("0"), it.next().unwrap_or("0"));
                out.push_str(&format!(
                    "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"2.2\" fill=\"{color}\"/>\n"
                ));
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + 16.0 * k as f64;
            out.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"12\" height=\"4\" fill=\"{color}\"/>\n",
                MARGIN_L + plot_w - 120.0,
                ly - 4.0
            ));
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{ly:.1}\" font-size=\"11\">{}</text>\n",
                MARGIN_L + plot_w - 102.0,
                xml_escape(name)
            ));
        }
        out.push_str("</svg>\n");
        out
    }
}

fn tick_label(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if !(1e-2..1e5).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_well_formed_svg() {
        let svg = LinePlot::new("t", "x", "y")
            .series("a", &[(1.0, 2.0), (2.0, 3.0)])
            .series("b", &[(1.0, 1.0), (2.0, 5.0)])
            .to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let svg = LinePlot::new("t", "x", "y")
            .log_axes(true, true)
            .series(
                "a",
                &[(0.0, 1.0), (10.0, 100.0), (100.0, -5.0), (1000.0, 10.0)],
            )
            .to_svg();
        // Only the two positive-positive points survive → one polyline.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn empty_plot_has_placeholder() {
        let svg = LinePlot::new("t", "x", "y").to_svg();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = LinePlot::new("a < b & c", "x", "y")
            .series("s", &[(1.0, 1.0)])
            .to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let svg = LinePlot::new("t", "x", "y")
            .series("s", &[(5.0, 5.0), (5.0, 5.0)])
            .to_svg();
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }
}
