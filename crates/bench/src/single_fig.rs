//! Shared driver of the single-node experiments (Figs. 6–7).

use crate::{Dataset, Scale, Table, Workload};
use move_cluster::CostModel;
use move_core::run_single_node;

/// Runs the Fig. 6/7 sweep for one corpus: for each work product
/// `R = P × Q ∈ {10⁵, 10⁶, 10⁷}` (scaled), vary the document count `Q` and
/// match `Q` documents against `P = R/Q` filters on one node, reporting the
/// pair-match throughput `R / time` (real wall-clock and cost-model
/// projected — the projection includes the disk knee at
/// `P > C ≈ 3.5×10⁶·scale`, so the largest-P point trips it as in the paper, which RAM-resident matching cannot show).
pub fn single_node_figure(scale: Scale, dataset: Dataset, csv_name: &str) {
    println!("{csv_name} ({scale})");
    let cost = CostModel {
        mem_capacity: scale.count(3_500_000, 700),
        ..CostModel::default()
    };
    let mut table = Table::new(
        csv_name,
        &[
            "R",
            "Q_docs",
            "P_filters",
            "pair_throughput_real",
            "pair_throughput_model",
            "doc_throughput_real",
        ],
    );

    let qs = [2u64, 10, 50, 200, 1_000];
    for r_paper in [100_000u64, 1_000_000, 10_000_000] {
        let r = scale.count(r_paper, 2_000);
        // One workload per R, generously sized, sliced per point.
        let q_max = *qs.iter().filter(|&&q| r / q >= 100).max().unwrap_or(&2);
        let p_max = r / qs[0];
        let w = Workload::build(
            Scale::new(1.0), // counts below are already scaled
            dataset,
            p_max,
            q_max,
            0xF16 + r,
        );
        for &q in &qs {
            let p = r / q;
            if p < 100 || (q as usize) > w.docs.len() {
                continue;
            }
            let filters = &w.filters[..(p as usize).min(w.filters.len())];
            let docs = &w.docs[..q as usize];
            let rep = run_single_node(filters, docs, move_types::MatchSemantics::Boolean, &cost);
            table.row(&[
                r.to_string(),
                q.to_string(),
                p.to_string(),
                format!("{:.3e}", rep.pair_throughput_real),
                format!("{:.3e}", rep.pair_throughput_virtual),
                format!("{:.3e}", rep.doc_throughput_real),
            ]);
        }
    }
    table.finish();
}
