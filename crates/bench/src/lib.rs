//! The benchmark harness regenerating every figure of the MOVE paper.
//!
//! Each figure/table of the evaluation (§VI) has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` §4 for the full index); this library holds
//! what they share:
//!
//! * [`Scale`] — one knob mapping the paper's parameters to laptop-sized
//!   runs (`MOVE_SCALE=1` reproduces paper scale);
//! * [`Workload`] — calibrated MSN filters + TREC-like documents with the
//!   published filter/document popularity coupling;
//! * [`run_scheme`] — the end-to-end experiment driver: build a scheme,
//!   register, (for MOVE) observe + allocate, publish a timed document
//!   stream, and play the resulting jobs through the queueing simulator;
//! * [`Table`] — aligned stdout tables plus CSV dumps under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod runner;
mod scale;
mod single_fig;
mod svg;
mod workload;

pub use report::Table;
pub use runner::{
    build_scheme, paper_system, run_scheme, run_stream, ExperimentConfig, RunResult, SchemeKind,
};
pub use scale::Scale;
pub use single_fig::single_node_figure;
pub use svg::LinePlot;
pub use workload::{Dataset, Workload};
