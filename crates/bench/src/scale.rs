//! The experiment scale knob.

/// Scales the paper's workload sizes down to tractable local runs.
///
/// The paper's full experiment (4 M filters over a 757,996-term vocabulary,
/// up to 10⁷ filters, ~100 physical machines) regenerates with
/// `MOVE_SCALE=1`; the default of 0.1 keeps every figure binary within
/// minutes on one machine while preserving every *shape* (the statistics
/// the generators target are scale-calibrated). Node counts are **not**
/// scaled — the cluster is simulated, so N stays at the paper's values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier applied to filter counts, document counts, vocabulary
    /// sizes and capacities.
    pub factor: f64,
}

impl Scale {
    /// Reads `MOVE_SCALE` from the environment (default 0.05, clamped to
    /// `[1e-4, 1]`).
    pub fn from_env() -> Self {
        let factor = std::env::var("MOVE_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.05)
            .clamp(1e-4, 1.0);
        Self { factor }
    }

    /// An explicit scale (tests).
    pub fn new(factor: f64) -> Self {
        Self {
            factor: factor.clamp(1e-4, 1.0),
        }
    }

    /// Scales a count, with a floor to keep degenerate runs meaningful.
    pub fn count(&self, base: u64, min: u64) -> u64 {
        ((base as f64 * self.factor).round() as u64).max(min)
    }

    /// Scales a vocabulary size.
    pub fn vocab(&self, base: usize) -> usize {
        ((base as f64 * self.factor).round() as usize).max(500)
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scale={}", self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_with_floors() {
        let s = Scale::new(0.1);
        assert_eq!(s.count(4_000_000, 1), 400_000);
        assert_eq!(s.count(5, 100), 100);
        assert_eq!(s.vocab(757_996), 75_800);
        assert_eq!(s.vocab(100), 500);
    }

    #[test]
    fn factor_is_clamped() {
        assert_eq!(Scale::new(7.0).factor, 1.0);
        assert_eq!(Scale::new(0.0).factor, 1e-4);
    }
}
