//! Paper-calibrated workloads for the figure binaries.

use crate::Scale;
use move_types::{Document, Filter};
use move_workload::{DocumentGenerator, FilterGenerator, MsnSpec, RankCoupling, TrecSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which TREC-like corpus drives the documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// TREC AP: 6054.9 terms/article, entropy 9.4473, overlap 26.9 %.
    Ap,
    /// TREC WT10G: 64.8 terms/doc, entropy 6.7593, overlap 31.3 % — the
    /// corpus of the cluster experiments.
    Wt,
}

impl Dataset {
    fn spec(self, vocab: usize) -> TrecSpec {
        match self {
            Self::Ap => TrecSpec::ap().scaled(vocab),
            Self::Wt => TrecSpec::wt().scaled(vocab),
        }
    }
}

/// A fully generated experiment workload.
#[derive(Debug)]
pub struct Workload {
    /// The registered profile filters (MSN-calibrated).
    pub filters: Vec<Filter>,
    /// The published document stream.
    pub docs: Vec<Document>,
    /// The offline corpus sample MOVE's proactive allocation learns from
    /// ("we use the 1000 documents as the offline document corpus to
    /// approximate qᵢ", §VI-A).
    pub sample: Vec<Document>,
    /// The shared vocabulary size.
    pub vocabulary: usize,
    /// The filter generator (for Fig. 4 style measurements).
    pub filter_spec: MsnSpec,
    /// The document spec (for Fig. 5 style measurements).
    pub doc_spec: TrecSpec,
}

impl Workload {
    /// Builds a deterministic workload at the given `scale`.
    ///
    /// `filters`/`docs` are *paper-scale* numbers — they are multiplied by
    /// the scale factor internally. The sample is 1000 documents as in the
    /// paper (scaled with a floor of 200).
    ///
    /// # Panics
    ///
    /// Panics if the calibrated generators reject the scaled specs (cannot
    /// happen for the paper parameter ranges; generator errors are
    /// programming errors here).
    pub fn build(scale: Scale, dataset: Dataset, filters: u64, docs: u64, seed: u64) -> Self {
        let vocabulary = scale.vocab(MsnSpec::paper().vocabulary);
        let n_filters = scale.count(filters, 100);
        let n_docs = scale.count(docs, 50);
        let n_sample = scale.count(1_000, 200);

        let msn = MsnSpec::scaled(vocabulary);
        let fgen = FilterGenerator::new(&msn).expect("MSN spec is calibratable");

        let base_doc_vocab = match dataset {
            Dataset::Ap => TrecSpec::ap().vocabulary,
            Dataset::Wt => TrecSpec::wt().vocabulary,
        };
        let doc_vocab = scale.vocab(base_doc_vocab).min(vocabulary);
        let trec = dataset.spec(doc_vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let coupling = RankCoupling::with_overlap(
            doc_vocab,
            vocabulary,
            trec.top_k.min(doc_vocab),
            trec.top_k_overlap,
            &mut rng,
        )
        .expect("coupling parameters are valid");
        let dgen = DocumentGenerator::new(&trec, coupling).expect("TREC spec is calibratable");

        let filters = fgen.trace(n_filters, &mut rng);
        let sample = dgen.corpus(n_sample, &mut rng);
        let docs: Vec<Document> = (0..n_docs)
            .map(|i| dgen.generate(n_sample + i, &mut rng))
            .collect();
        Self {
            filters,
            docs,
            sample,
            vocabulary,
            filter_spec: msn,
            doc_spec: trec,
        }
    }
}

impl Workload {
    /// The one shared cluster-experiment dataset (WT documents, the paper's
    /// §VI-C defaults at maximum size): all cluster figures slice this same
    /// realization, as the paper's do — the coupling between hot document
    /// terms and hot filter terms is a per-realization coin flip that would
    /// otherwise shift hot-node loads between figures.
    pub fn paper_cluster(scale: Scale) -> Workload {
        Workload::build(scale, Dataset::Wt, 10_000_000, 500_000, 42)
    }

    /// A copy of this workload restricted to the first `n` filters — the
    /// Fig. 8a sweep registers prefixes of one generated trace so points
    /// differ only in `P`.
    pub fn slice_filters(&self, n: usize) -> Workload {
        Workload {
            filters: self.filters[..n.min(self.filters.len())].to_vec(),
            docs: self.docs.clone(),
            sample: self.sample.clone(),
            vocabulary: self.vocabulary,
            filter_spec: self.filter_spec.clone(),
            doc_spec: self.doc_spec.clone(),
        }
    }

    /// A copy restricted to the first `n` documents (Fig. 8b varies the
    /// stream length with the injection rate).
    pub fn slice_docs(&self, n: usize) -> Workload {
        self.doc_window(0, n)
    }

    /// A copy restricted to `len` documents starting at `start` (clamped) —
    /// repetition windows for small-batch experiments.
    pub fn doc_window(&self, start: usize, len: usize) -> Workload {
        let start = start.min(self.docs.len());
        let end = (start + len).min(self.docs.len());
        Workload {
            filters: self.filters.clone(),
            docs: self.docs[start..end].to_vec(),
            sample: self.sample.clone(),
            vocabulary: self.vocabulary,
            filter_spec: self.filter_spec.clone(),
            doc_spec: self.doc_spec.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let s = Scale::new(0.01);
        let a = Workload::build(s, Dataset::Wt, 100_000, 2_000, 7);
        let b = Workload::build(s, Dataset::Wt, 100_000, 2_000, 7);
        assert_eq!(a.filters, b.filters);
        assert_eq!(a.docs[0], b.docs[0]);
        assert_eq!(a.filters.len(), 1_000);
    }

    #[test]
    fn ap_docs_dwarf_wt_docs() {
        let s = Scale::new(0.01);
        let ap = Workload::build(s, Dataset::Ap, 10_000, 3_000, 1);
        let wt = Workload::build(s, Dataset::Wt, 10_000, 3_000, 1);
        let mean = |docs: &[Document]| {
            docs.iter().map(|d| d.distinct_terms()).sum::<usize>() as f64 / docs.len() as f64
        };
        assert!(mean(&ap.docs) > 3.0 * mean(&wt.docs));
    }
}
