//! Criterion micro-benchmarks for the MOVE building blocks: Porter
//! stemming, Bloom filters, ring routing, posting-list maintenance, and the
//! two match algorithms (home-node single-term vs centralized SIFT).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use move_bloom::BloomFilter;
use move_cluster::Ring;
use move_index::{InvertedIndex, PostingList};
use move_text::stem;
use move_types::{Document, Filter, FilterId, MatchSemantics, NodeId, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_stemmer(c: &mut Criterion) {
    let words = [
        "relational",
        "vietnamization",
        "generalizations",
        "controlling",
        "hopefulness",
        "cats",
    ];
    c.bench_function("porter_stem_6_words", |b| {
        b.iter(|| {
            for w in words {
                black_box(stem(black_box(w)));
            }
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bf = BloomFilter::new(1_000_000, 0.01);
    for t in 0..1_000_000u32 {
        bf.insert(&t);
    }
    c.bench_function("bloom_contains_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1_000_000;
            black_box(bf.contains(&i))
        })
    });
    c.bench_function("bloom_contains_miss", |b| {
        let mut i = 1_000_000u32;
        b.iter(|| {
            i += 1;
            black_box(bf.contains(&i))
        })
    });
}

fn bench_ring(c: &mut Criterion) {
    let ring = Ring::new((0..100).map(NodeId), 64);
    c.bench_function("ring_home_of_term", |b| {
        let mut t = 0u32;
        b.iter(|| {
            t = t.wrapping_add(1);
            black_box(ring.home_of_term(TermId(t)))
        })
    });
    c.bench_function("ring_preference_list_3", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(ring.preference_list(&k, 3))
        })
    });
}

fn bench_postings(c: &mut Criterion) {
    c.bench_function("posting_insert_10k", |b| {
        b.iter_batched(
            PostingList::new,
            |mut pl| {
                for i in 0..10_000u64 {
                    pl.insert(FilterId((i * 7919) % 10_000));
                }
                pl
            },
            BatchSize::SmallInput,
        )
    });
}

fn build_index(filters: usize, vocab: u32) -> InvertedIndex {
    let mut rng = StdRng::seed_from_u64(1);
    let mut idx = InvertedIndex::new(MatchSemantics::Boolean);
    for id in 0..filters as u64 {
        let len = rng.gen_range(1..=3);
        let terms: Vec<TermId> = (0..len).map(|_| TermId(rng.gen_range(0..vocab))).collect();
        idx.insert(Filter::new(id, terms));
    }
    idx
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &p in &[10_000usize, 100_000] {
        let idx = build_index(p, 50_000);
        let mut rng = StdRng::seed_from_u64(2);
        let doc = Document::from_distinct_terms(
            0u64,
            (0..64)
                .map(|_| TermId(rng.gen_range(0..50_000u32)))
                .collect::<std::collections::HashSet<_>>(),
        );
        group.bench_with_input(BenchmarkId::new("sift_64_terms", p), &idx, |b, idx| {
            b.iter(|| black_box(idx.match_document(black_box(&doc))))
        });
        let term = *doc.terms().first().expect("doc has terms");
        group.bench_with_input(BenchmarkId::new("single_term", p), &idx, |b, idx| {
            b.iter(|| black_box(idx.match_term(black_box(&doc), term)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stemmer,
    bench_bloom,
    bench_ring,
    bench_postings,
    bench_matching
);
criterion_main!(benches);
