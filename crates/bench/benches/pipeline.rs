//! Criterion end-to-end benchmarks: registering filters and publishing
//! documents through each of the three dissemination schemes on a small
//! simulated cluster — the per-operation costs behind the figure harness.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use move_bench::{Dataset, Scale, Workload};
use move_core::{Dissemination, IlScheme, MoveScheme, RsScheme, SystemConfig};
use std::hint::black_box;

fn small_workload() -> Workload {
    Workload::build(Scale::new(0.005), Dataset::Wt, 200_000, 10_000, 7)
}

fn config(vocab: usize) -> SystemConfig {
    SystemConfig {
        capacity_per_node: 100_000,
        expected_terms: vocab,
        ..SystemConfig::default()
    }
}

fn bench_register(c: &mut Criterion) {
    let w = small_workload();
    let mut group = c.benchmark_group("register_1k_filters");
    group.bench_function("il", |b| {
        b.iter_batched(
            || IlScheme::new(config(w.vocabulary)).expect("valid"),
            |mut s| {
                for f in &w.filters[..1_000] {
                    s.register(f).expect("register");
                }
                black_box(s.registered_filters())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("move", |b| {
        b.iter_batched(
            || MoveScheme::new(config(w.vocabulary)).expect("valid"),
            |mut s| {
                for f in &w.filters[..1_000] {
                    s.register(f).expect("register");
                }
                black_box(s.registered_filters())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    let w = small_workload();
    let mut group = c.benchmark_group("publish_wt_doc");
    group.sample_size(30);

    let mut il = IlScheme::new(config(w.vocabulary)).expect("valid");
    let mut rs = RsScheme::new(config(w.vocabulary)).expect("valid");
    let mut mv = MoveScheme::new(config(w.vocabulary)).expect("valid");
    for f in &w.filters {
        il.register(f).expect("register");
        rs.register(f).expect("register");
        mv.register(f).expect("register");
    }
    mv.observe_corpus(&w.sample);
    mv.allocate().expect("allocate");

    let schemes: Vec<(&str, &mut dyn Dissemination)> =
        vec![("il", &mut il), ("rs", &mut rs), ("move", &mut mv)];
    for (name, scheme) in schemes {
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                i = (i + 1) % w.docs.len();
                black_box(scheme.publish(0.0, &w.docs[i]).expect("publish"))
            })
        });
    }
    group.finish();
}

fn bench_allocate(c: &mut Criterion) {
    let w = small_workload();
    c.bench_function("allocate_1k_filters_20_nodes", |b| {
        b.iter_batched(
            || {
                let mut m = MoveScheme::new(config(w.vocabulary)).expect("valid");
                for f in &w.filters[..1_000] {
                    m.register(f).expect("register");
                }
                m.observe_corpus(&w.sample);
                m
            },
            |mut m| {
                m.allocate().expect("allocate");
                black_box(m.forwarding_tables())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_register, bench_publish, bench_allocate);
criterion_main!(benches);
