//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives and strips poisoning from the API, matching
//! parking_lot's signatures (`lock()` returns the guard directly, and
//! `Condvar::wait` takes the guard by `&mut`). Guards wrap the std guard in
//! an `Option` so the condvar can move it out and back safely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// A guard releasing a [`Mutex`] on drop.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the data without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// A guard releasing an [`RwLock`] read lock on drop.
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// A guard releasing an [`RwLock`] write lock on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the data without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
