//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! `channel` module with bounded/unbounded MPMC channels and disconnect
//! semantics, implemented over `std::sync::{Mutex, Condvar}`.
//!
//! Note: unlike real crossbeam, `bounded(0)` is treated as `bounded(1)`
//! rather than a rendezvous channel; the workspace never creates
//! zero-capacity channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Full(_) => f.write_str("Full(..)"),
                Self::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Full(_) => f.write_str("sending on a full channel"),
                Self::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    impl<T> TrySendError<T> {
        /// Recovers the message that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                Self::Full(t) | Self::Disconnected(t) => t,
            }
        }

        /// Whether the failure was a full queue.
        #[must_use]
        pub fn is_full(&self) -> bool {
            matches!(self, Self::Full(_))
        }

        /// Whether the failure was a disconnected channel.
        #[must_use]
        pub fn is_disconnected(&self) -> bool {
            matches!(self, Self::Disconnected(_))
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Empty => f.write_str("receiving on an empty channel"),
                Self::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("timed out waiting on channel"),
                Self::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// `cap == 0` is rounded up to 1 (no rendezvous support in this shim).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    /// Creates a channel with unlimited capacity.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back if all receivers have been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(msg);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .0
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Sends `msg` without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TrySendError::Full`] when at capacity and
        /// [`TrySendError::Disconnected`] when all receivers are gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.0.lock().queue.is_empty()
        }

        /// The channel capacity, if bounded.
        #[must_use]
        pub fn capacity(&self) -> Option<usize> {
            self.0.lock().cap
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and all senders
        /// have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives a message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when no message is queued and
        /// [`TryRecvError::Disconnected`] when additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a message, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError::Timeout`] if the deadline passes and
        /// [`RecvTimeoutError::Disconnected`] if the channel is empty with
        /// all senders gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.0.lock().queue.is_empty()
        }

        /// The channel capacity, if bounded.
        #[must_use]
        pub fn capacity(&self) -> Option<usize> {
            self.0.lock().cap
        }

        /// A blocking iterator yielding messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// A non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Non-blocking iterator; see [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).map(|()| true).unwrap_or(false));
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(t.join().unwrap());
        }

        #[test]
        fn mpmc_no_loss() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..500u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let mut expect: Vec<u64> = (0..4)
                .flat_map(|p| (0..500).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(all, expect);
        }

        #[test]
        fn recv_timeout_works() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }
    }
}
