//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! an immutable, cheaply-cloneable byte buffer with ordering and hashing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::new(bytes.to_vec()))
    }

    /// Copies `data` into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Extracts the contents as a `Vec<u8>`, cloning if shared.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::new(v.to_vec()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self(Arc::new(v.as_bytes().to_vec()))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self(Arc::new(v.into_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self(Arc::new(iter.into_iter().collect()))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_prefix() {
        let a = Bytes::from(&b"abc"[..]);
        let b = Bytes::from(b"abd".to_vec());
        assert!(a < b);
        assert!(b.starts_with(b"ab"));
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..2], b"ab");
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from("hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), b"hello");
    }
}
