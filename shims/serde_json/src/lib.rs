//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] over the serde
//! shim's [`Value`] tree, with a small recursive-descent JSON parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;
use serde::{DeError, Deserialize, Number, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self(e.0)
    }
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails in this shim (kept fallible for API compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this shim (kept fallible for API compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ----------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // `{:?}` prints the shortest representation that round-trips.
            out.push_str(&format!("{f:?}"));
        }
        // JSON has no NaN/Inf; serialize as null like upstream's default.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                let rest = self.bytes.get(self.pos..self.pos + 6);
                                let low = rest
                                    .and_then(|r| std::str::from_utf8(r).ok())
                                    .filter(|r| r.starts_with("\\u"))
                                    .and_then(|r| u32::from_str_radix(&r[2..], 16).ok());
                                match low {
                                    Some(lo) if (0xDC00..0xE000).contains(&lo) => {
                                        self.pos += 6;
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                                    }
                                    _ => 0xFFFD,
                                }
                            } else {
                                cp
                            };
                            out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>(&to_string("a\"b\\c\nd").unwrap()).unwrap(),
            "a\"b\\c\nd"
        );
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), v);
        let m: std::collections::BTreeMap<String, f64> =
            [("a".to_string(), 1.5), ("b".to_string(), 2.0)].into();
        let s = to_string(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, f64>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let m: std::collections::BTreeMap<String, Vec<u32>> =
            [("xs".to_string(), vec![1, 2])].into();
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<u32>>>(&pretty).unwrap(),
            m
        );
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"héllo ☃\"").unwrap(), "héllo ☃");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }
}
