//! Offline shim for the subset of `rand_distr` 0.4 this workspace uses:
//! [`LogNormal`] and [`Poisson`] (plus the [`Distribution`] trait
//! re-exported from the `rand` shim).
//!
//! Sampling algorithms: standard normals via Box–Muller (polar form),
//! Poisson via Knuth multiplication for small means and a
//! normal approximation with continuity correction for large means —
//! accurate to well under the tolerances the workload calibrators assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Draws a standard normal via the Marsaglia polar method.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Fails when `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite()) {
            return Err(Error("normal std_dev must be finite and >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    /// Creates the distribution from the underlying normal's parameters.
    ///
    /// # Errors
    ///
    /// Fails when `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !(sigma.is_finite() && sigma >= 0.0 && mu.is_finite()) {
            return Err(Error("log-normal sigma must be finite and >= 0"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// The Poisson distribution with mean `lambda`; samples are returned as
/// `f64` counts, matching upstream `rand_distr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson<F> {
    lambda: F,
}

impl Poisson<f64> {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Fails when `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error("poisson lambda must be finite and > 0"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Poisson<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= limit {
                    return k as f64;
                }
                k += 1;
            }
        }
        // Normal approximation with continuity correction, clamped at 0 —
        // relative error is negligible for λ ≥ 30 at the workload's scales.
        let draw = self.lambda + self.lambda.sqrt() * standard_normal(rng) + 0.5;
        draw.floor().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let m = mean_of(200_000, || d.sample(&mut rng));
        assert!((m - 3.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn log_normal_mean_is_exp_mu_plus_half_sigma_sq() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 0.5f64;
        let d = LogNormal::new(-sigma * sigma / 2.0, sigma).unwrap();
        let m = mean_of(200_000, || d.sample(&mut rng));
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        for lambda in [0.5, 4.0, 25.0, 80.0, 400.0] {
            let d = Poisson::new(lambda).unwrap();
            let m = mean_of(100_000, || d.sample(&mut rng));
            assert!(
                (m - lambda).abs() < lambda.max(1.0) * 0.03,
                "lambda {lambda}: mean {m}"
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(Poisson::new(0.0).is_err());
    }
}
