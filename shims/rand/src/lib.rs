//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small, self-contained implementation under the same crate name:
//! [`RngCore`] / [`SeedableRng`] / [`Rng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), uniform range
//! sampling for the integer and float types the workspace draws, and
//! [`seq::SliceRandom`] (Fisher–Yates shuffle, `choose`).
//!
//! Determinism matters more than matching upstream `rand`'s exact streams:
//! every consumer seeds explicitly via [`SeedableRng::seed_from_u64`], and
//! all tests assert *self-consistent* properties (completeness against a
//! brute-force oracle, calibrated statistics within tolerances), never
//! byte-identical sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type for fallible RNG operations (always succeeds in this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    /// Fallible [`RngCore::fill_bytes`]; never fails here.
    ///
    /// # Errors
    ///
    /// None in this shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be built from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same construction upstream `rand` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types a range can be sampled from (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add(uniform_below(rng, span as u64) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any word is uniform.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $ty)
            }
        }
    )*};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = unit_f64(rng) as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let unit = unit_f64(rng) as $ty;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Uniform `u64` in `[0, bound)` by rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws a value uniformly over the type's natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw over a type's natural domain.
    #[allow(clippy::should_implement_trait)] // mirrors the upstream name
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }

    /// Samples from a distribution (mirror of `Rng::sample`).
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution abstractions (subset of `rand::distributions`).
pub mod distributions {
    use super::{unit_f64, Rng};

    /// A sampling distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform distribution on `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    /// Uniform distribution over a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + unit_f64(rng) * (self.high - self.low)
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.gen_range(self.low..self.high)
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.gen_range(self.low..self.high)
        }
    }
}

/// Ready-made generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not upstream `rand`'s ChaCha-based `StdRng` — this shim favors a
    /// small, fast, well-tested PRNG with the same construction
    /// (`seed_from_u64` → SplitMix64 expansion) and excellent statistical
    /// quality for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias: the shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: shuffle and random choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        use super::RngCore as _;
        let _ = rng.next_u32();
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
