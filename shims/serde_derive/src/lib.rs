//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` generating impls of the *serde shim's*
//! [`Value`]-tree traits (`to_value` / `from_value`).
//!
//! The derive is hand-rolled over `proc_macro::TokenTree` (no `syn` /
//! `quote` — they are unavailable offline) and supports exactly the shapes
//! this workspace derives on:
//!
//! * structs with named fields → externally visible JSON objects,
//! * tuple structs with one field → transparent (the inner value), which
//!   also subsumes the `#[serde(transparent)]` newtype ids,
//! * tuple structs with several fields → JSON arrays,
//! * unit structs → `null`,
//! * enums with unit and tuple variants → serde's default externally
//!   tagged representation (`"Variant"` / `{"Variant": payload}`).
//!
//! All `#[serde(...)]`, `#[doc]`, and `#[default]` attributes are accepted
//! and ignored (the only one the workspace uses, `transparent`, matches the
//! default newtype behavior above).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed item looks like.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Derives the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => error(&msg),
    }
}

/// Derives the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Skips `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("derive shim does not support generics on `{name}`"));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_top_level_items(&g.stream().into_iter().collect::<Vec<_>>()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Field names of a named-field struct body.
///
/// A field name is an identifier directly followed by a lone `:` (not
/// `::`) while not inside `<...>` generic arguments.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle: i32 = 0;
    let mut expecting_field = true; // at start or just after a top-level `,`
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => expecting_field = true,
                '#' if expecting_field => {
                    // Attribute in field position: skip `#[...]`.
                    i = skip_attrs(tokens, i);
                    continue;
                }
                _ => {}
            },
            TokenTree::Ident(id) if angle == 0 && expecting_field => {
                let word = id.to_string();
                if word == "pub" {
                    i = skip_vis(tokens, i);
                    continue;
                }
                // The next token must be a lone `:` for this to be a field.
                match tokens.get(i + 1) {
                    Some(TokenTree::Punct(p))
                        if p.as_char() == ':' && p.spacing() == proc_macro::Spacing::Alone =>
                    {
                        fields.push(word);
                        expecting_field = false;
                    }
                    _ => return Err(format!("unsupported field syntax near `{word}`")),
                }
            }
            _ => {}
        }
        i += 1;
    }
    Ok(fields)
}

/// Number of comma-separated items at angle-bracket depth 0 (tuple-struct
/// arity), ignoring a trailing comma.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut items = 1;
    let mut trailing = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    items += 1;
                    trailing = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing = false;
    }
    if trailing {
        items -= 1;
    }
    items
}

/// `(variant name, tuple payload arity)` pairs of an enum body.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let name = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected enum variant, found {other:?}")),
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_items(&g.stream().into_iter().collect::<Vec<_>>())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "derive shim does not support struct variants (`{name}`)"
                ));
            }
            _ => 0,
        };
        if arity == 0 {
            variants.push((name, 0));
        } else {
            variants.push((name, arity));
        }
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => return Err(format!("expected `,` between variants, found {other:?}")),
        }
    }
    Ok(variants)
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Object(::std::vec![{pushes}])\
                     }}\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Serialize::to_value(&self.0)\
                 }}\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::Array(::std::vec![{items}])\
                     }}\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from({v:?})),"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({v:?}), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).ok_or_else(|| \
                             ::serde::DeError::missing_field({f:?}))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\
                         if !::std::matches!(v, ::serde::Value::Object(_)) {{\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"object\", v));\
                         }}\
                         ::std::result::Result::Ok(Self {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\
                     ::std::result::Result::Ok(Self(\
                         ::serde::Deserialize::from_value(v)?))\
                 }}\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\
                         match v {{\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok(Self({items})),\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{arity}-element array\", other)),\
                         }}\
                     }}\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn from_value(_v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\
                     ::std::result::Result::Ok(Self)\
                 }}\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| match arity {
                    1 => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                    ),
                    n => {
                        let items: String = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                            .collect();
                        format!(
                            "{v:?} => match inner {{\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({items})),\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\"{n}-element array\", other)),\
                             }},"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\
                         match v {{\
                             ::serde::Value::String(s) => match s.as_str() {{\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::custom(::std::format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\
                             }},\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\
                                 let (tag, inner) = &fields[0];\
                                 match tag.as_str() {{\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(\
                                         ::serde::DeError::custom(::std::format!(\
                                             \"unknown variant `{{other}}` of {name}\"))),\
                                 }}\
                             }}\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum representation\", other)),\
                         }}\
                     }}\
                 }}"
            )
        }
    }
}
