//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `BatchSize` and the `criterion_group!` / `criterion_main!` macros. The
//! measurement loop is deliberately simple: a short calibration pass sizes
//! the iteration count to roughly `TARGET_SAMPLE_TIME`, then `SAMPLES`
//! timed samples are taken and the median per-iteration time is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

const SAMPLES: usize = 7;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// How per-iteration inputs are sized in [`Bencher::iter_batched`].
///
/// The shim times each routine invocation individually, so the variants
/// only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: many iterations per batch upstream.
    SmallInput,
    /// Large input: few iterations per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the last run, for reporting.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the median iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in the target sample time?
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= TARGET_SAMPLE_TIME / 4 || n >= 1 << 24 {
                break;
            }
            n = n.saturating_mul(4);
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / u32::try_from(n).unwrap_or(u32::MAX));
        }
        samples.sort();
        self.elapsed_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed());
        }
        samples.sort();
        self.elapsed_per_iter = samples[samples.len() / 2];
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            samples.push(start.elapsed());
        }
        samples.sort();
        self.elapsed_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let nanos = b.elapsed_per_iter.as_nanos();
    if nanos >= 10_000_000 {
        println!("{label:<50} {:>12.3} ms/iter", nanos as f64 / 1e6);
    } else if nanos >= 10_000 {
        println!("{label:<50} {:>12.3} us/iter", nanos as f64 / 1e3);
    } else {
        println!("{label:<50} {nanos:>12} ns/iter");
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Upstream configuration hook; ignored by the shim.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Upstream configuration hook; ignored by the shim.
    #[must_use]
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Upstream final-summary hook; a no-op in the shim.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream configuration hook; ignored by the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream configuration hook; ignored by the shim.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnOnce(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
