//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serialization framework under the same crate name. Unlike real
//! serde's format-generic data model, this shim serializes through a single
//! in-memory [`Value`] tree (JSON-shaped — the only format the workspace
//! ever uses, via the sibling `serde_json` shim).
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the `serde_derive`
//! shim (enabled through the `derive` feature, like upstream) and generates
//! impls of the [`Serialize`] / [`Deserialize`] traits below. Enum
//! representation matches serde's default *externally tagged* form: unit
//! variants as strings, payload variants as single-entry objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Anything with a fractional part or exponent.
    F(f64),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::I(i)) => Some(*i as f64),
            Value::Number(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::I(i)) => Some(*i),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing object field helper.
    pub fn missing_field(name: &str) -> Self {
        Self(format!("missing field `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the shim's [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or range mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$ty>::try_from(u).map_err(|_| DeError::custom(format!(
                    "{u} out of range for {}", stringify!($ty)
                )))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$ty>::try_from(i).map_err(|_| DeError::custom(format!(
                    "{i} out of range for {}", stringify!($ty)
                )))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| DeError::custom("array length changed during parse"))
            }
            other => Err(DeError::expected("fixed-length array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across runs.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn container_round_trips() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            HashMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn range_errors() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }
}
