//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded by the test name) and failures are re-raised as
//! ordinary panics with the case number attached — there is **no
//! shrinking**. The strategy combinator surface (`prop_map`,
//! `prop_flat_map`, `boxed`, tuples, ranges, regex-literal strings,
//! `prop::collection::{vec, btree_set, hash_set}`, `prop_oneof!`, `Just`,
//! `any`) matches what the test suite needs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Sentinel panic payload used by `prop_assume!` to reject a case.
pub struct Rejected;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

impl ProptestConfig {
    /// Creates a config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (bounded attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Weighted choice between strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Creates a union from `(weight, strategy)` arms.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut x = rng.gen_range(0..total.max(1));
        for (w, s) in &self.arms {
            if x < *w {
                return s.generate(rng);
            }
            x -= w;
        }
        self.arms[0].1.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------------ primitives

/// Types with a canonical "anything goes" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes.
        let mag: f64 = rng.gen_range(-100.0f64..100.0);
        let exp: i32 = rng.gen_range(-8i32..9);
        mag * 10f64.powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        random_char(rng)
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

// --------------------------------------------------------- regex strings

/// String strategies from regex-ish literals (`"[a-z]{0,20}"`, `".*"`).
///
/// Supported syntax: literal chars, `.`, character classes `[a-z0-9_]`
/// (ranges and singletons, no negation), and the quantifiers `*`, `+`,
/// `?`, `{m}`, `{m,n}`, `{m,}`. Unknown constructs degrade to literals.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

fn random_char(rng: &mut TestRng) -> char {
    match rng.gen_range(0u32..100) {
        // Mostly benign ASCII so tokenizer-ish code sees realistic input.
        0..=59 => {
            let set = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
            set[rng.gen_range(0..set.len())] as char
        }
        60..=84 => char::from_u32(rng.gen_range(0x21u32..0x7f)).unwrap_or('?'),
        _ => {
            // Any scalar value except surrogates; excludes '\n' like `.`.
            loop {
                let cp = rng.gen_range(0u32..0x11_0000);
                if let Some(c) = char::from_u32(cp) {
                    if c != '\n' {
                        return c;
                    }
                }
            }
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                if ranges.is_empty() {
                    ranges.push(('?', '?'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0usize, 16usize)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                if let Some(close) = close {
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let parts: Vec<&str> = body.splitn(2, ',').collect();
                    let m: usize = parts[0].trim().parse().unwrap_or(1);
                    let n = match parts.get(1) {
                        None => m,
                        Some(s) if s.trim().is_empty() => m + 16,
                        Some(s) => s.trim().parse().unwrap_or(m),
                    };
                    (m, n.max(m))
                } else {
                    (1, 1)
                }
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Dot => out.push(random_char(rng)),
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    let (a, b) = (a as u32, b as u32);
                    let cp = rng.gen_range(a..=b.max(a));
                    out.push(char::from_u32(cp).unwrap_or('?'));
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------- collections

/// The `prop::` namespace mirrored from upstream's prelude.
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`, `hash_set`).
    pub mod collection {
        pub use crate::collection::*;
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeSet, HashSet};
    use std::ops::Range;

    /// Size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; see [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates ordered sets whose size falls in `size` (best effort when
    /// the element domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`; see [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates hash sets whose size falls in `size` (best effort when the
    /// element domain is small).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

// Re-exported so `prop::collection::vec(...)` and direct paths both work.
pub use collection::SizeRange;

// ---------------------------------------------------------------- runner

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Runs `case` until `config.cases` accepted executions; used by the
/// `proptest!` macro expansion.
///
/// # Panics
///
/// Re-raises the first failing case's panic (annotated with the case
/// number on stderr), or panics if too many cases are rejected by
/// `prop_assume!`.
pub fn run_proptest<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut case: F) {
    let mut rng = TestRng::seed_from_u64(fnv1a(name) ^ 0x9e37_79b9_7f4a_7c15);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest '{name}': too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(()) => accepted += 1,
            Err(payload) => {
                if payload.downcast_ref::<Rejected>().is_some() {
                    continue;
                }
                eprintln!("proptest '{name}': failed on accepted case {accepted} (attempt {attempts}); rerun is deterministic");
                resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests; mirrors upstream's `proptest!` block form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            ::std::panic::panic_any($crate::Rejected);
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Everything a property test module needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..6),
            s in prop::collection::btree_set(0u32..1000, 1..5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 5);
        }

        #[test]
        fn regex_literals_generate_matching_strings(word in "[a-z]{0,20}") {
            prop_assert!(word.len() <= 20);
            prop_assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x < 8);
            prop_assert!(x < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn flat_map_and_oneof_compose(v in (1u32..5).prop_flat_map(|n| {
            prop::collection::vec(prop_oneof![3 => Just(0u32), 1 => 1u32..10], (n as usize)..(n as usize + 1))
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        use rand::SeedableRng;
        let mut a = crate::TestRng::seed_from_u64(7);
        let mut b = crate::TestRng::seed_from_u64(7);
        let s = crate::prop::collection::vec(0u64..1_000_000, 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
